package core

import (
	"fmt"

	"vmdg/internal/bench/nbench"
	"vmdg/internal/bench/sevenz"
	"vmdg/internal/boinc"
	"vmdg/internal/cost"
	"vmdg/internal/hostos"
	"vmdg/internal/report"
	"vmdg/internal/sim"
	"vmdg/internal/stats"
	"vmdg/internal/vmm"
)

// warmup lets a freshly powered VM settle into steady state before the
// host benchmark starts.
const warmup = 200 * sim.Millisecond

// hostPrios are the two VM priorities of Figures 5/6/FP, in presentation
// order.
var hostPrios = [...]hostos.Priority{hostos.PrioNormal, hostos.PrioIdle}

// targetKernelCycles stretches each NBench kernel to a duration long
// enough to average over scheduler and service-thread periods.
func targetKernelCycles(cfg Config) float64 {
	if cfg.Quick {
		return 1.2e8 // 50 ms at 2.4 GHz
	}
	return 7.2e8 // 300 ms
}

// vmWithWorker builds a VM from prof on host, running an endless
// Einstein@home worker at 100% virtual CPU, powered on at prio.
func vmWithWorker(host *hostos.OS, prof vmm.Profile, seed uint64, prio hostos.Priority) (*vmm.VM, error) {
	vm, err := vmm.New(host, vmm.Config{Prof: prof})
	if err != nil {
		return nil, err
	}
	wu := boinc.DefaultWorkUnit("wu-host-impact", seed)
	vm.SpawnGuest("einstein", boinc.NewWorker(boinc.Progress{WorkUnit: wu}))
	vm.PowerOn(prio)
	return vm, nil
}

// runHostBench executes prog as a normal-priority host process and
// returns its wall time. The simulation must already contain whatever
// competing load the scenario calls for.
func runHostBench(host *hostos.OS, prog cost.Program) (sim.Time, error) {
	p := host.NewProcess("bench")
	start := host.Sim.Now()
	host.Spawn(p, "bench", hostos.PrioNormal, prog)
	if !host.RunUntilFinished(p, start+3600*sim.Second) {
		return 0, fmt.Errorf("core: host benchmark did not finish")
	}
	return host.Sim.Now() - start, nil
}

// nbenchKernelProgram sizes kernel k's profile to the target duration.
func nbenchKernelProgram(cfg Config, k nbench.Kernel, seed uint64) (*cost.Profile, error) {
	res := nbench.RunKernel(k, seed)
	if !res.Check {
		return nil, fmt.Errorf("core: nbench %v self-check failed", k)
	}
	iters := int(targetKernelCycles(cfg)/res.Counts.Cycles()) + 1
	p, _ := nbench.Profile(k, seed, iters)
	return p, nil
}

// nbenchIndexOverhead measures, for one NBench index, the fractional
// slowdown of the host benchmark caused by a VM running the Einstein
// worker at the given priority: 1 − geomean(rate_withVM / rate_alone).
func nbenchIndexOverhead(cfg Config, idx nbench.Index, prof vmm.Profile, prio hostos.Priority) (float64, error) {
	var ratios []float64
	for _, k := range idx.Members() {
		prog, err := nbenchKernelProgram(cfg, k, cfg.Seed)
		if err != nil {
			return 0, err
		}
		// Baseline: kernel alone on the host.
		hostA := newHost(cfg.Seed)
		base, err := runHostBench(hostA, prog.Iter())
		if err != nil {
			return 0, err
		}
		// With the VM active.
		hostB := newHost(cfg.Seed)
		vm, err := vmWithWorker(hostB, prof, cfg.Seed, prio)
		if err != nil {
			return 0, err
		}
		hostB.RunFor(warmup)
		with, err := runHostBench(hostB, prog.Iter())
		if err != nil {
			return 0, err
		}
		vm.PowerOff()
		ratios = append(ratios, base.Seconds()/with.Seconds())
	}
	return 1 - stats.GeoMean(ratios), nil
}

// nbenchShard measures one (environment, priority) cell of Figures
// 5/6/FP: the index overhead with the VM at that priority, clamped at
// zero (measurement noise below baseline).
func nbenchShard(cfg Config, idx nbench.Index, shard int) (ShardPayload, error) {
	prof := GuestEnvironments()[shard/len(hostPrios)]
	prio := hostPrios[shard%len(hostPrios)]
	ov, err := nbenchIndexOverhead(cfg, idx, prof, prio)
	if err != nil {
		return nil, err
	}
	if ov < 0 {
		ov = 0
	}
	return ShardPayload{"overhead": {ov}}, nil
}

// nbenchAssemble builds Figures 5/6/FP from the (environment, priority)
// grid: one bar per cell, and the per-environment headline (asserted
// against the paper band) is the worse of the two priorities.
func nbenchAssemble(id, title string, shards []ShardPayload) (*Result, error) {
	fig := &report.Figure{Title: title, Unit: " overhead (fraction)"}
	res := newResult(id, fig)
	for e, prof := range GuestEnvironments() {
		worst := 0.0
		for p, prio := range hostPrios {
			ov, err := shards[e*len(hostPrios)+p].one("overhead")
			if err != nil {
				return nil, err
			}
			res.add(fmt.Sprintf("%s/%s", prof.Name, prio), ov, 0)
			if ov > worst {
				worst = ov
			}
		}
		res.Values[prof.Name] = worst
	}
	return res, nil
}

// nbenchDef builds the Sharded definition for one NBench index figure.
func nbenchDef(id, title string, idx nbench.Index) Sharded {
	return Sharded{
		ID:     id,
		Title:  title,
		Shards: func(Config) int { return len(GuestEnvironments()) * len(hostPrios) },
		Run: func(cfg Config, shard int) (ShardPayload, error) {
			return nbenchShard(cfg, idx, shard)
		},
		Assemble: func(cfg Config, shards []ShardPayload) (*Result, error) {
			return nbenchAssemble(id, title, shards)
		},
	}
}

var (
	fig5Def = nbenchDef("fig5",
		"Figure 5 — Host NBench MEM-index overhead with guest at 100% vCPU",
		nbench.MemIndex)
	fig6Def = nbenchDef("fig6",
		"Figure 6 — Host NBench INT-index overhead with guest at 100% vCPU",
		nbench.IntIndex)
	figFPDef = nbenchDef("figFP",
		"Figure 5b — Host NBench FP-index overhead (plot omitted in paper)",
		nbench.FPIndex)
)

// Figure5 regenerates "Relative performance (MEM index)": host NBench
// memory-index overhead while a guest runs Einstein@home at 100% vCPU.
func Figure5(cfg Config) (*Result, error) { return fig5Def.RunSerial(cfg) }

// Figure6 regenerates "Relative performance (INT index)".
func Figure6(cfg Config) (*Result, error) { return fig6Def.RunSerial(cfg) }

// FigureFP regenerates the FP-index companion the paper describes but
// omits for space ("practically no overhead was observed regarding
// floating point", §4.2.2).
func FigureFP(cfg Config) (*Result, error) { return figFPDef.RunSerial(cfg) }

// sevenzHostRates measures the host 7z benchmark's instruction rate for
// 1 and 2 threads, optionally sharing the machine with a VM. It returns
// instructions per second of virtual time, summed over threads.
func sevenzHostRates(cfg Config, prof *vmm.Profile, threads int) (float64, error) {
	block, passes := 512<<10, 2
	if cfg.Quick {
		block, passes = 256<<10, 1
	}
	p7z, run := sevenz.Profile(cfg.Seed, block, passes)
	if !run.RoundTrip {
		return 0, fmt.Errorf("core: 7z round trip failed")
	}
	// Stretch to ≈1 s of single-thread native time so quantum effects
	// average out.
	iters := int(2.4e9/p7z.TotalCycles()) + 1
	prog := p7z.Repeat(iters)
	instr := run.Instructions() * float64(iters)

	host := newHost(cfg.Seed)
	var vm *vmm.VM
	if prof != nil {
		var err error
		// The paper sets the VM to idle priority for this experiment
		// ("to minimize impact, and reproduce real conditions", §4.2.3).
		vm, err = vmWithWorker(host, *prof, cfg.Seed, hostos.PrioIdle)
		if err != nil {
			return 0, err
		}
		host.RunFor(warmup)
	}
	bench := host.NewProcess("7z")
	start := host.Sim.Now()
	for i := 0; i < threads; i++ {
		host.Spawn(bench, fmt.Sprintf("7z-t%d", i), hostos.PrioNormal, prog.Iter())
	}
	if !host.RunUntilFinished(bench, start+3600*sim.Second) {
		return 0, fmt.Errorf("core: 7z host run did not finish")
	}
	wall := (host.Sim.Now() - start).Seconds()
	if vm != nil {
		vm.PowerOff()
	}
	return instr * float64(threads) / wall, nil
}

// Figures 7 and 8 share one measurement set: the host 7z instruction
// rate for 1 and 2 threads, with no VM and under each environment. The
// shards enumerate it as no-vm/1t, no-vm/2t, then env0/1t, env0/2t, ...
// Both figures carry the same cache scope, so a cached run of one
// supplies every shard of the other.
const hostImpactScope = "hostimpact7z"

// Figure captions (paper presentation titles).
const (
	fig7Title = "Figure 7 — Available % CPU for host OS when guest runs at 100%"
	fig8Title = "Figure 8 — Host 7z MIPS ratio (with VM / without VM)"
)

func hostImpactShards(Config) int { return 2 + 2*len(GuestEnvironments()) }

// hostImpactShard measures one rate cell.
func hostImpactShard(cfg Config, shard int) (ShardPayload, error) {
	threads := shard%2 + 1
	var prof *vmm.Profile
	if shard >= 2 {
		p := GuestEnvironments()[(shard-2)/2]
		prof = &p
	}
	rate, err := sevenzHostRates(cfg, prof, threads)
	if err != nil {
		return nil, err
	}
	return ShardPayload{"rate": {rate}}, nil
}

// hostImpactRates unpacks the shard grid into base rates and
// per-environment rates.
func hostImpactRates(shards []ShardPayload) (base1t, base2t float64, env1t, env2t map[string]float64, err error) {
	if base1t, err = shards[0].one("rate"); err != nil {
		return
	}
	if base2t, err = shards[1].one("rate"); err != nil {
		return
	}
	env1t, env2t = map[string]float64{}, map[string]float64{}
	for e, prof := range GuestEnvironments() {
		if env1t[prof.Name], err = shards[2+2*e].one("rate"); err != nil {
			return
		}
		if env2t[prof.Name], err = shards[3+2*e].one("rate"); err != nil {
			return
		}
	}
	return
}

// fig7Assemble reports the 7z benchmark's effective CPU percentage (its
// aggregate instruction rate relative to a single unloaded thread).
func fig7Assemble(cfg Config, shards []ShardPayload) (*Result, error) {
	base1t, base2t, env1t, env2t, err := hostImpactRates(shards)
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{Title: fig7Title, Unit: "% CPU"}
	res := newResult("fig7", fig)
	res.add("no-vm/1t", 100*base1t/base1t, 0)
	res.add("no-vm/2t", 100*base2t/base1t, 0)
	for _, prof := range GuestEnvironments() {
		res.add(prof.Name+"/1t", 100*env1t[prof.Name]/base1t, 0)
		res.add(prof.Name+"/2t", 100*env2t[prof.Name]/base1t, 0)
	}
	return res, nil
}

// fig8Assemble reports the ratio of the host benchmark's MIPS with a VM
// present to the same execution without one.
func fig8Assemble(cfg Config, shards []ShardPayload) (*Result, error) {
	base1t, base2t, env1t, env2t, err := hostImpactRates(shards)
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{Title: fig8Title, Unit: " ratio", Baseline: 1}
	res := newResult("fig8", fig)
	for _, prof := range GuestEnvironments() {
		res.add(prof.Name+"/1t", env1t[prof.Name]/base1t, 0)
		res.add(prof.Name+"/2t", env2t[prof.Name]/base2t, 0)
	}
	return res, nil
}

var fig7Def = Sharded{
	ID:       "fig7",
	Title:    fig7Title,
	Scope:    hostImpactScope,
	Shards:   hostImpactShards,
	Run:      hostImpactShard,
	Assemble: fig7Assemble,
}

var fig8Def = Sharded{
	ID:       "fig8",
	Title:    fig8Title,
	Scope:    hostImpactScope,
	Shards:   hostImpactShards,
	Run:      hostImpactShard,
	Assemble: fig8Assemble,
}

// Figure7 regenerates "Available % CPU for host OS when guest OS is
// running at 100%".
func Figure7(cfg Config) (*Result, error) { return fig7Def.RunSerial(cfg) }

// Figure8 regenerates "MIPS for 7z when guest OS is running at 100%".
func Figure8(cfg Config) (*Result, error) { return fig8Def.RunSerial(cfg) }
