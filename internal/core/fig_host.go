package core

import (
	"fmt"

	"vmdg/internal/bench/nbench"
	"vmdg/internal/bench/sevenz"
	"vmdg/internal/boinc"
	"vmdg/internal/cost"
	"vmdg/internal/hostos"
	"vmdg/internal/report"
	"vmdg/internal/sim"
	"vmdg/internal/stats"
	"vmdg/internal/vmm"
)

// warmup lets a freshly powered VM settle into steady state before the
// host benchmark starts.
const warmup = 200 * sim.Millisecond

// targetKernelCycles stretches each NBench kernel to a duration long
// enough to average over scheduler and service-thread periods.
func targetKernelCycles(cfg Config) float64 {
	if cfg.Quick {
		return 1.2e8 // 50 ms at 2.4 GHz
	}
	return 7.2e8 // 300 ms
}

// vmWithWorker builds a VM from prof on host, running an endless
// Einstein@home worker at 100% virtual CPU, powered on at prio.
func vmWithWorker(host *hostos.OS, prof vmm.Profile, seed uint64, prio hostos.Priority) (*vmm.VM, error) {
	vm, err := vmm.New(host, vmm.Config{Prof: prof})
	if err != nil {
		return nil, err
	}
	wu := boinc.DefaultWorkUnit("wu-host-impact", seed)
	vm.SpawnGuest("einstein", boinc.NewWorker(boinc.Progress{WorkUnit: wu}))
	vm.PowerOn(prio)
	return vm, nil
}

// runHostBench executes prog as a normal-priority host process and
// returns its wall time. The simulation must already contain whatever
// competing load the scenario calls for.
func runHostBench(host *hostos.OS, prog cost.Program) (sim.Time, error) {
	p := host.NewProcess("bench")
	start := host.Sim.Now()
	host.Spawn(p, "bench", hostos.PrioNormal, prog)
	if !host.RunUntilFinished(p, start+3600*sim.Second) {
		return 0, fmt.Errorf("core: host benchmark did not finish")
	}
	return host.Sim.Now() - start, nil
}

// nbenchKernelProgram sizes kernel k's profile to the target duration.
func nbenchKernelProgram(cfg Config, k nbench.Kernel, seed uint64) (*cost.Profile, error) {
	res := nbench.RunKernel(k, seed)
	if !res.Check {
		return nil, fmt.Errorf("core: nbench %v self-check failed", k)
	}
	iters := int(targetKernelCycles(cfg)/res.Counts.Cycles()) + 1
	p, _ := nbench.Profile(k, seed, iters)
	return p, nil
}

// nbenchIndexOverhead measures, for one NBench index, the fractional
// slowdown of the host benchmark caused by a VM running the Einstein
// worker at the given priority: 1 − geomean(rate_withVM / rate_alone).
func nbenchIndexOverhead(cfg Config, idx nbench.Index, prof vmm.Profile, prio hostos.Priority) (float64, error) {
	var ratios []float64
	for _, k := range idx.Members() {
		prog, err := nbenchKernelProgram(cfg, k, cfg.Seed)
		if err != nil {
			return 0, err
		}
		// Baseline: kernel alone on the host.
		hostA := newHost(cfg.Seed)
		base, err := runHostBench(hostA, prog.Iter())
		if err != nil {
			return 0, err
		}
		// With the VM active.
		hostB := newHost(cfg.Seed)
		vm, err := vmWithWorker(hostB, prof, cfg.Seed, prio)
		if err != nil {
			return 0, err
		}
		hostB.RunFor(warmup)
		with, err := runHostBench(hostB, prog.Iter())
		if err != nil {
			return 0, err
		}
		vm.PowerOff()
		ratios = append(ratios, base.Seconds()/with.Seconds())
	}
	return 1 - stats.GeoMean(ratios), nil
}

// nbenchFigure builds Figures 5/6/FP: per environment, the index overhead
// with the VM at normal and at idle priority.
func nbenchFigure(cfg Config, id, title string, idx nbench.Index) (*Result, error) {
	fig := &report.Figure{Title: title, Unit: " overhead (fraction)"}
	res := newResult(id, fig)
	for _, prof := range GuestEnvironments() {
		worst := 0.0
		for _, prio := range []hostos.Priority{hostos.PrioNormal, hostos.PrioIdle} {
			ov, err := nbenchIndexOverhead(cfg, idx, prof, prio)
			if err != nil {
				return nil, err
			}
			if ov < 0 {
				ov = 0 // measurement noise below baseline
			}
			label := fmt.Sprintf("%s/%s", prof.Name, prio)
			res.add(label, ov, 0)
			if ov > worst {
				worst = ov
			}
		}
		// The per-environment headline (asserted against the paper band)
		// is the worse of the two priorities.
		res.Values[prof.Name] = worst
	}
	return res, nil
}

// Figure5 regenerates "Relative performance (MEM index)": host NBench
// memory-index overhead while a guest runs Einstein@home at 100% vCPU.
func Figure5(cfg Config) (*Result, error) {
	return nbenchFigure(cfg, "fig5",
		"Figure 5 — Host NBench MEM-index overhead with guest at 100% vCPU",
		nbench.MemIndex)
}

// Figure6 regenerates "Relative performance (INT index)".
func Figure6(cfg Config) (*Result, error) {
	return nbenchFigure(cfg, "fig6",
		"Figure 6 — Host NBench INT-index overhead with guest at 100% vCPU",
		nbench.IntIndex)
}

// FigureFP regenerates the FP-index companion the paper describes but
// omits for space ("practically no overhead was observed regarding
// floating point", §4.2.2).
func FigureFP(cfg Config) (*Result, error) {
	return nbenchFigure(cfg, "figFP",
		"Figure 5b — Host NBench FP-index overhead (plot omitted in paper)",
		nbench.FPIndex)
}

// sevenzHostRates measures the host 7z benchmark's instruction rate for
// 1 and 2 threads, optionally sharing the machine with a VM. It returns
// instructions per second of virtual time, summed over threads.
func sevenzHostRates(cfg Config, prof *vmm.Profile, threads int) (float64, error) {
	block, passes := 512<<10, 2
	if cfg.Quick {
		block, passes = 256<<10, 1
	}
	p7z, run := sevenz.Profile(cfg.Seed, block, passes)
	if !run.RoundTrip {
		return 0, fmt.Errorf("core: 7z round trip failed")
	}
	// Stretch to ≈1 s of single-thread native time so quantum effects
	// average out.
	iters := int(2.4e9/p7z.TotalCycles()) + 1
	prog := p7z.Repeat(iters)
	instr := run.Instructions() * float64(iters)

	host := newHost(cfg.Seed)
	var vm *vmm.VM
	if prof != nil {
		var err error
		// The paper sets the VM to idle priority for this experiment
		// ("to minimize impact, and reproduce real conditions", §4.2.3).
		vm, err = vmWithWorker(host, *prof, cfg.Seed, hostos.PrioIdle)
		if err != nil {
			return 0, err
		}
		host.RunFor(warmup)
	}
	bench := host.NewProcess("7z")
	start := host.Sim.Now()
	for i := 0; i < threads; i++ {
		host.Spawn(bench, fmt.Sprintf("7z-t%d", i), hostos.PrioNormal, prog.Iter())
	}
	if !host.RunUntilFinished(bench, start+3600*sim.Second) {
		return 0, fmt.Errorf("core: 7z host run did not finish")
	}
	wall := (host.Sim.Now() - start).Seconds()
	if vm != nil {
		vm.PowerOff()
	}
	return instr * float64(threads) / wall, nil
}

// hostImpact7z gathers every Figure 7/8 measurement in one pass.
type hostImpact7z struct {
	base1t, base2t float64            // no-VM rates
	env1t, env2t   map[string]float64 // per-environment rates
}

func measureHostImpact(cfg Config) (*hostImpact7z, error) {
	out := &hostImpact7z{env1t: map[string]float64{}, env2t: map[string]float64{}}
	var err error
	if out.base1t, err = sevenzHostRates(cfg, nil, 1); err != nil {
		return nil, err
	}
	if out.base2t, err = sevenzHostRates(cfg, nil, 2); err != nil {
		return nil, err
	}
	for _, prof := range GuestEnvironments() {
		prof := prof
		if out.env1t[prof.Name], err = sevenzHostRates(cfg, &prof, 1); err != nil {
			return nil, err
		}
		if out.env2t[prof.Name], err = sevenzHostRates(cfg, &prof, 2); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Figure7 regenerates "Available % CPU for host OS when guest OS is
// running at 100%": the 7z benchmark's effective CPU percentage (its
// aggregate instruction rate relative to a single unloaded thread).
func Figure7(cfg Config) (*Result, error) {
	m, err := measureHostImpact(cfg)
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		Title: "Figure 7 — Available % CPU for host OS when guest runs at 100%",
		Unit:  "% CPU",
	}
	res := newResult("fig7", fig)
	res.add("no-vm/1t", 100*m.base1t/m.base1t, 0)
	res.add("no-vm/2t", 100*m.base2t/m.base1t, 0)
	for _, prof := range GuestEnvironments() {
		res.add(prof.Name+"/1t", 100*m.env1t[prof.Name]/m.base1t, 0)
		res.add(prof.Name+"/2t", 100*m.env2t[prof.Name]/m.base1t, 0)
	}
	return res, nil
}

// Figure8 regenerates "MIPS for 7z when guest OS is running at 100%":
// the ratio of the host benchmark's MIPS with a VM present to the same
// execution without one.
func Figure8(cfg Config) (*Result, error) {
	m, err := measureHostImpact(cfg)
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		Title:    "Figure 8 — Host 7z MIPS ratio (with VM / without VM)",
		Unit:     " ratio",
		Baseline: 1,
	}
	res := newResult("fig8", fig)
	for _, prof := range GuestEnvironments() {
		res.add(prof.Name+"/1t", m.env1t[prof.Name]/m.base1t, 0)
		res.add(prof.Name+"/2t", m.env2t[prof.Name]/m.base2t, 0)
	}
	return res, nil
}
