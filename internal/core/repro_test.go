package core

import (
	"testing"
)

// quickCfg is the configuration used by the reproduction tests: trimmed
// workloads, two repetitions.
func quickCfg() Config { return Config{Seed: 1, Reps: 2, Quick: true} }

// assertBands checks every measured headline value against the paper's
// acceptance band.
func assertBands(t *testing.T, res *Result) {
	t.Helper()
	targets, ok := PaperTargets[res.ID]
	if !ok {
		t.Fatalf("no paper targets registered for %s", res.ID)
	}
	for label, band := range targets {
		got, ok := res.Values[label]
		if !ok {
			t.Errorf("%s: no measurement for %q", res.ID, label)
			continue
		}
		if !band.In(got) {
			t.Errorf("%s %q = %.4g outside paper band [%.4g, %.4g] (paper: %.4g)",
				res.ID, label, got, band.Lo, band.Hi, band.Paper)
		}
	}
}

func TestReproFigure1(t *testing.T) {
	res, err := Figure1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	assertBands(t, res)
	// Shape: the paper's ordering vmplayer < virtualbox < virtualpc < qemu.
	v := res.Values
	if !(v["vmplayer"] < v["virtualbox"] && v["virtualbox"] < v["virtualpc"] && v["virtualpc"] < v["qemu"]) {
		t.Errorf("fig1 ordering broken: %+v", v)
	}
}

func TestReproFigure2(t *testing.T) {
	res, err := Figure2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	assertBands(t, res)
	// Shape: FP impact is milder than integer impact for every
	// environment (§4.1: "the performance drop is much smaller").
	fig1, err := Figure1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, env := range GuestEnvironments() {
		if res.Values[env.Name] >= fig1.Values[env.Name] {
			t.Errorf("matrix slowdown %.3f not below 7z slowdown %.3f for %s",
				res.Values[env.Name], fig1.Values[env.Name], env.Name)
		}
	}
}

func TestReproFigure3(t *testing.T) {
	res, err := Figure3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	assertBands(t, res)
	if res.Series == nil || len(res.Series.Lines) != 5 {
		t.Fatal("fig3 missing per-size series")
	}
	// Shape: disk I/O is the most impacted class — worse than both CPU
	// figures for every environment (§4.1).
	if res.Values["qemu"] < 3 {
		t.Errorf("qemu disk slowdown %.3f lost its catastrophic character", res.Values["qemu"])
	}
}

func TestReproFigure4(t *testing.T) {
	res, err := Figure4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	assertBands(t, res)
	v := res.Values
	// Shape: native fastest; bridged VmPlayer ≈ native; NAT modes collapse;
	// VirtualBox NAT is the catastrophe (~75× below native).
	if !(v["native"] >= v["vmplayer"] && v["vmplayer"] > v["qemu"] &&
		v["qemu"] > v["virtualpc"] && v["virtualpc"] > v["vmplayer-nat"] &&
		v["vmplayer-nat"] > v["virtualbox"]) {
		t.Errorf("fig4 ordering broken: %+v", v)
	}
	if ratio := v["native"] / v["virtualbox"]; ratio < 40 || ratio > 120 {
		t.Errorf("virtualbox NAT collapse = %.1f× below native, want ≈75×", ratio)
	}
}

func TestReproFigure5(t *testing.T) {
	res, err := Figure5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	assertBands(t, res)
	// Shape: priority level barely matters (§4.2.2).
	for _, env := range GuestEnvironments() {
		n := res.Values[env.Name+"/normal"]
		i := res.Values[env.Name+"/idle"]
		if diff := n - i; diff > 0.03 || diff < -0.03 {
			t.Errorf("%s MEM overhead differs by %.3f across priorities", env.Name, diff)
		}
	}
}

func TestReproFigure6(t *testing.T) {
	res, err := Figure6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	assertBands(t, res)
}

func TestReproFigureFP(t *testing.T) {
	res, err := FigureFP(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	assertBands(t, res)
}

func TestReproFigure7(t *testing.T) {
	res, err := Figure7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	assertBands(t, res)
	v := res.Values
	// Shape: single-threaded host work is essentially unimpacted; dual-
	// threaded work loses 10–35%; VmPlayer is ≈3× more intrusive than the
	// others (§4.2.3, the paper's headline).
	for _, env := range GuestEnvironments() {
		if v[env.Name+"/1t"] < 90 {
			t.Errorf("%s 1-thread availability %.1f%% — single-thread impact should be marginal", env.Name, v[env.Name+"/1t"])
		}
	}
	vmpLoss := v["no-vm/2t"] - v["vmplayer/2t"]
	for _, other := range []string{"qemu", "virtualbox", "virtualpc"} {
		loss := v["no-vm/2t"] - v[other+"/2t"]
		if vmpLoss < 1.8*loss {
			t.Errorf("vmplayer 2t loss %.1f not ≫ %s loss %.1f", vmpLoss, other, loss)
		}
	}
}

func TestReproFigure8(t *testing.T) {
	res, err := Figure8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	assertBands(t, res)
	// Shape: the fastest guest environment is the most intrusive host
	// neighbour — the paper's central inverse relation.
	v := res.Values
	if !(v["vmplayer/2t"] < v["qemu/2t"] && v["vmplayer/2t"] < v["virtualbox/2t"] &&
		v["vmplayer/2t"] < v["virtualpc/2t"]) {
		t.Errorf("fig8 inverse relation broken: %+v", v)
	}
}

func TestAllFiguresProducesEveryID(t *testing.T) {
	cfg := Config{Seed: 1, Reps: 1, Quick: true}
	results, err := AllFigures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "figFP", "fig7", "fig8"}
	if len(results) != len(want) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.ID != want[i] {
			t.Errorf("result %d = %s, want %s", i, r.ID, want[i])
		}
		if len(r.Figure.Rows) == 0 {
			t.Errorf("%s produced no rows", r.ID)
		}
		if r.Figure.Render() == "" || r.Figure.CSV() == "" {
			t.Errorf("%s failed to render", r.ID)
		}
	}
}

func TestDeterministicReproduction(t *testing.T) {
	cfg := Config{Seed: 9, Reps: 1, Quick: true}
	a, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, va := range a.Values {
		if vb := b.Values[k]; va != vb {
			t.Errorf("figure1 %s nondeterministic: %v vs %v", k, va, vb)
		}
	}
}
