package core

import "testing"

func TestBusContentionSweep(t *testing.T) {
	ks := []float64{0, 0.45, 0.9}
	series, err := BusContentionSweep(quickCfg(), ks)
	if err != nil {
		t.Fatal(err)
	}
	ys := series.Lines["no-vm/2t"]
	// No contention: near-perfect scaling; calibrated: the paper's ≈180;
	// doubled: visibly below.
	if ys[0] < 195 || ys[0] > 201 {
		t.Errorf("BusK=0 gives %.1f%%, want ≈200", ys[0])
	}
	if ys[1] < 172 || ys[1] > 188 {
		t.Errorf("calibrated BusK gives %.1f%%, want ≈180", ys[1])
	}
	if !(ys[0] > ys[1] && ys[1] > ys[2]) {
		t.Errorf("availability not monotone in contention: %v", ys)
	}
}

func TestServiceDutySweep(t *testing.T) {
	duties := []float64{0.15, 0.45, 0.68}
	series, err := ServiceDutySweep(quickCfg(), duties)
	if err != nil {
		t.Fatal(err)
	}
	ys := series.Lines["7z/2t"]
	for i := 1; i < len(ys); i++ {
		if ys[i] >= ys[i-1] {
			t.Fatalf("availability not decreasing in service duty: %v", ys)
		}
	}
	// The sweep spans the gap between "the other environments" (~160) and
	// VmPlayer (~120): endpoints must bracket it.
	if ys[0] < 145 || ys[len(ys)-1] > 140 {
		t.Errorf("duty sweep endpoints %v do not bracket the paper's 160→120 range", ys)
	}
}

func TestNATQueueAblation(t *testing.T) {
	shared, split, err := NATQueueAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if shared <= 0 || split <= 0 {
		t.Fatal("no throughput measured")
	}
	// The shared proxy queue must cost real throughput beyond the pure
	// per-frame tax: ACKs crossing the same server steal data-path
	// capacity (≈ half an ACK service per data segment, ≈10% here).
	if split < shared*1.08 {
		t.Errorf("splitting the NAT queue gained only %.2f→%.2f Mbps; coupling not visible", shared, split)
	}
	if split > shared*1.5 {
		t.Errorf("queue split gained %.2f→%.2f Mbps; per-frame costs no longer dominate", shared, split)
	}
}

func TestMultiVMExperiment(t *testing.T) {
	res, err := MultiVMExperiment(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.UnitsOneVM <= 0 {
		t.Fatal("single VM completed no work")
	}
	if res.Scaling < 1.7 || res.Scaling > 2.1 {
		t.Errorf("two instances scale by %.2f×, want ≈2× on a dual core", res.Scaling)
	}
}

func TestUDPLossExperiment(t *testing.T) {
	results, err := UDPLossExperiment(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byEnv := map[string]UDPLossResult{}
	for _, r := range results {
		byEnv[r.Env] = r
	}
	// Bridged paths carry the 10 Mbps offer without loss.
	for _, env := range []string{"native", "vmplayer"} {
		r := byEnv[env]
		if r.LossFraction > 0.01 {
			t.Errorf("%s lost %.1f%% of a 10 Mbps UDP stream on a 100 Mbps LAN", env, r.LossFraction*100)
		}
		if r.DeliveredMbps < 9 {
			t.Errorf("%s delivered only %.2f of 10 Mbps", env, r.DeliveredMbps)
		}
	}
	// The NAT proxies saturate near their (TCP-measured) capacity and
	// shed the rest.
	nat := byEnv["vmplayer-nat"]
	if nat.LossFraction < 0.40 {
		t.Errorf("vmplayer-nat lost only %.1f%%; proxy should saturate near ~4 Mbps", nat.LossFraction*100)
	}
	if nat.DeliveredMbps < 2.5 || nat.DeliveredMbps > 6 {
		t.Errorf("vmplayer-nat delivered %.2f Mbps, want ≈ its ~4 Mbps capacity", nat.DeliveredMbps)
	}
	if nat.Drops == 0 {
		t.Error("no frames recorded as dropped at the NAT proxy")
	}
	vbox := byEnv["virtualbox"]
	if vbox.DeliveredMbps > nat.DeliveredMbps {
		t.Errorf("virtualbox NAT (%.2f) outperformed vmplayer NAT (%.2f)", vbox.DeliveredMbps, nat.DeliveredMbps)
	}
	if vbox.LossFraction < 0.7 {
		t.Errorf("virtualbox NAT lost only %.1f%% at 10 Mbps offered vs ~1.3 Mbps capacity", vbox.LossFraction*100)
	}
}

func TestConfinementExperiment(t *testing.T) {
	res, err := ConfinementExperiment(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Work conservation: the service duty steals the same total either
	// way, so aggregate availability is invariant to pinning (within a
	// few points of scheduling noise) — the experiment's negative result.
	diff := res.PinnedPct - res.UnpinnedPct
	if diff < -8 || diff > 8 {
		t.Errorf("pinning moved aggregate availability %.1f%% → %.1f%%; expected invariance", res.UnpinnedPct, res.PinnedPct)
	}
	// And both sit in the VmPlayer band of Figure 7.
	if res.UnpinnedPct < 105 || res.UnpinnedPct > 138 {
		t.Errorf("unpinned availability %.1f%% outside the Figure 7 band", res.UnpinnedPct)
	}
}
