package vmm

import (
	"math"
	"testing"
	"testing/quick"

	"vmdg/internal/cost"
	"vmdg/internal/hostos"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

func testHost(t *testing.T) *hostos.OS {
	t.Helper()
	s := sim.New()
	m, err := hw.NewMachine(s, hw.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return hostos.Boot(m)
}

func testProfile() Profile {
	return Profile{
		Name:      "test",
		IntExpand: 1.5, FPExpand: 1.2, MemExpand: 1.3, KernelExpand: 4,
		DiskPerOp: sim.Millisecond, DiskChunk: 256 << 10, DiskCPUPerOp: 1e5,
		NetMode:     NetBridged,
		NetPerFrame: 100 * sim.Microsecond,
		ServiceDuty: 0.25, ServicePeriod: 20 * sim.Millisecond,
		ServiceMix: cost.Mix{Int: 1},
		TickLoss:   0.8,
		RAMBytes:   300 << 20,
	}
}

func TestProfileValidate(t *testing.T) {
	if err := Native().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := testProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.IntExpand = 0.5 },
		func(p *Profile) { p.KernelExpand = math.NaN() },
		func(p *Profile) { p.DiskPerOp = -1 },
		func(p *Profile) { p.DiskChunk = -1 },
		func(p *Profile) { p.ServiceDuty = 1.5 },
		func(p *Profile) { p.ServiceDuty = 0.3; p.ServicePeriod = 0 },
		func(p *Profile) { p.TickLoss = 2 },
		func(p *Profile) { p.RAMBytes = -1 },
		func(p *Profile) { p.NetPerFrame = -1 },
	}
	for i, mutate := range bad {
		p := testProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestExpandFactorAndStep(t *testing.T) {
	p := testProfile()
	mix := cost.Mix{Int: 0.4, FP: 0.2, Mem: 0.3, Kernel: 0.1}
	want := 0.4*1.5 + 0.2*1.2 + 0.3*1.3 + 0.1*4.0
	if got := p.ExpandFactor(mix); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpandFactor = %v, want %v", got, want)
	}
	st := cost.Step{Kind: cost.StepCompute, Cycles: 1e6, Mix: mix}
	out := p.ExpandStep(st)
	if math.Abs(out.Cycles-1e6*want) > 1 {
		t.Fatalf("ExpandStep cycles = %v, want %v", out.Cycles, 1e6*want)
	}
	if math.Abs(out.Mix.Total()-1) > 1e-9 {
		t.Fatalf("expanded mix not normalized: %v", out.Mix)
	}
	// Native profile is the identity.
	n := Native()
	out2 := n.ExpandStep(st)
	if out2.Cycles != st.Cycles || out2.Mix != st.Mix {
		t.Fatalf("native expansion changed the step: %+v", out2)
	}
	// Non-compute steps pass through untouched.
	halt := cost.Step{Kind: cost.StepHalt}
	if p.ExpandStep(halt) != halt {
		t.Fatal("halt step modified")
	}
}

func TestExpandStepMonotoneProperty(t *testing.T) {
	p := testProfile()
	f := func(a, b, c, d uint8) bool {
		mix := cost.Mix{
			Int: float64(a), FP: float64(b), Mem: float64(c), Kernel: float64(d),
		}.Normalized()
		st := cost.Step{Kind: cost.StepCompute, Cycles: 1e6, Mix: mix}
		out := p.ExpandStep(st)
		// Expansion never shrinks work and never exceeds the max factor.
		return out.Cycles >= st.Cycles-1 && out.Cycles <= st.Cycles*4+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRawImageTranslate(t *testing.T) {
	img := NewRawImage("base", 1000, 1<<20)
	ext := img.Translate(4096, 8192, false)
	if len(ext) != 1 || ext[0].HostOff != 1000+4096 || ext[0].Bytes != 8192 {
		t.Fatalf("raw translate = %+v", ext)
	}
	if img.SizeBytes() != 1<<20 || img.TranslateCost() <= 0 {
		t.Fatal("raw image metadata wrong")
	}
}

func TestRawImageOutOfRangePanics(t *testing.T) {
	img := NewRawImage("b", 0, 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range access")
		}
	}()
	img.Translate(0, 8192, false)
}

func TestCOWImageReadThroughAndWriteAllocation(t *testing.T) {
	base := NewRawImage("base", 0, 1<<20)
	cow := NewCOWImage("ovl", base, 10<<20)

	// Unwritten read: falls through to the base image.
	ext := cow.Translate(0, 4096, false)
	if len(ext) != 1 || ext[0].FileID != "base" {
		t.Fatalf("unwritten read = %+v", ext)
	}
	// Write: allocates in the overlay.
	ext = cow.Translate(0, 4096, true)
	if len(ext) != 1 || ext[0].FileID != "ovl" {
		t.Fatalf("write = %+v", ext)
	}
	if cow.AllocatedClusters != 1 || cow.OverlayBytes() != cowClusterSize {
		t.Fatalf("allocation bookkeeping: %d clusters", cow.AllocatedClusters)
	}
	// Subsequent read of the written range: served by the overlay.
	ext = cow.Translate(0, 4096, false)
	if ext[0].FileID != "ovl" {
		t.Fatalf("read-after-write = %+v", ext)
	}
	// A read crossing written and unwritten clusters splits.
	ext = cow.Translate(cowClusterSize-4096, 8192, false)
	if len(ext) != 2 || ext[0].FileID != "ovl" || ext[1].FileID != "base" {
		t.Fatalf("boundary read = %+v", ext)
	}
}

func TestCOWImageTableRoundTrip(t *testing.T) {
	base := NewRawImage("base", 0, 1<<20)
	cow := NewCOWImage("ovl", base, 0)
	cow.Translate(0, 4096, true)
	cow.Translate(3*cowClusterSize, 4096, true)
	table := cow.OverlayTable()
	if len(table) != 2 {
		t.Fatalf("table = %v", table)
	}
	cow2 := NewCOWImage("ovl", base, 0)
	cow2.RestoreOverlayTable(table)
	for _, off := range []int64{0, 3 * cowClusterSize} {
		if ext := cow2.Translate(off, 4096, false); ext[0].FileID != "ovl" {
			t.Fatalf("restored cluster at %d not in overlay", off)
		}
	}
	// New allocations must not collide with restored ones.
	cow2.Translate(5*cowClusterSize, 4096, true)
	seen := map[int64]bool{}
	for _, kv := range cow2.OverlayTable() {
		if seen[kv[1]] {
			t.Fatalf("overlay offset %d allocated twice", kv[1])
		}
		seen[kv[1]] = true
	}
}

func TestCOWTranslateCoversRequestProperty(t *testing.T) {
	base := NewRawImage("base", 0, 8<<20)
	cow := NewCOWImage("ovl", base, 0)
	f := func(offRaw, nRaw uint32, write bool) bool {
		off := int64(offRaw) % (8 << 20)
		n := int64(nRaw)%(1<<20) + 1
		if off+n > 8<<20 {
			n = 8<<20 - off
		}
		var total int64
		for _, e := range cow.Translate(off, n, write) {
			if e.Bytes <= 0 {
				return false
			}
			total += e.Bytes
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceExtents(t *testing.T) {
	in := []Extent{
		{HostOff: 0, Bytes: 100, FileID: "a"},
		{HostOff: 100, Bytes: 50, FileID: "a"},
		{HostOff: 150, Bytes: 10, FileID: "b"},
		{HostOff: 200, Bytes: 10, FileID: "b"},
	}
	out := coalesceExtents(in)
	if len(out) != 3 || out[0].Bytes != 150 {
		t.Fatalf("coalesce = %+v", out)
	}
}

// runGuestCompute powers a VM with a pure-compute guest workload and
// returns the wall time to finish it.
func runGuestCompute(t *testing.T, prof Profile, cycles float64, mix cost.Mix) sim.Time {
	t.Helper()
	host := testHost(t)
	vm, err := New(host, Config{Prof: prof})
	if err != nil {
		t.Fatal(err)
	}
	prog := &cost.Profile{Name: "w", Steps: []cost.Step{{Kind: cost.StepCompute, Cycles: cycles, Mix: mix}}}
	vm.SpawnGuest("w", prog.Iter())
	vm.PowerOn(hostos.PrioNormal)
	if !host.RunUntilFinished(vm.Proc, 100*sim.Second) {
		t.Fatal("guest never finished")
	}
	done := host.Sim.Now()
	vm.PowerOff()
	host.Sim.Run()
	return done
}

func TestVMSlowdownMatchesExpansion(t *testing.T) {
	mix := cost.Mix{Int: 0.5, FP: 0.2, Mem: 0.3}
	cycles := 2.4e9
	nat := runGuestCompute(t, Native(), cycles, mix)
	vir := runGuestCompute(t, testProfile(), cycles, mix)
	slow := float64(vir) / float64(nat)
	want := testProfile().ExpandFactor(mix)
	// Guest kernel overhead shifts the ratio slightly; ±10% band.
	if slow < want*0.90 || slow > want*1.10 {
		t.Fatalf("slowdown = %.3f, want ≈%.3f", slow, want)
	}
}

func TestVMMemoryCommit(t *testing.T) {
	host := testHost(t)
	vm, err := New(host, Config{Prof: testProfile()})
	if err != nil {
		t.Fatal(err)
	}
	if host.M.Committed() != 300<<20 {
		t.Fatalf("committed = %d, want the configured 300 MB", host.M.Committed())
	}
	// Memory is constant while running — the paper's §4.2.1 point.
	vm.SpawnGuest("w", (&cost.Profile{Name: "w", Steps: []cost.Step{{Kind: cost.StepCompute, Cycles: 1e9, Mix: cost.Mix{Int: 1}}}}).Iter())
	vm.PowerOn(hostos.PrioIdle)
	host.RunFor(100 * sim.Millisecond)
	if host.M.Committed() != 300<<20 {
		t.Fatalf("commit drifted mid-run: %d", host.M.Committed())
	}
	vm.PowerOff()
	host.Sim.Run()
	if host.M.Committed() != 0 {
		t.Fatalf("RAM not released at power-off: %d", host.M.Committed())
	}
}

func TestVMOvercommitRejected(t *testing.T) {
	host := testHost(t)
	p := testProfile()
	p.RAMBytes = 2 << 30 // exceeds the 1 GB machine
	if _, err := New(host, Config{Prof: p}); err == nil {
		t.Fatal("overcommit accepted")
	}
}

func TestVMServiceThreadsRunAtElevatedPriority(t *testing.T) {
	host := testHost(t)
	vm, err := New(host, Config{Prof: testProfile()})
	if err != nil {
		t.Fatal(err)
	}
	// Endless guest worker.
	loop := cost.Loop(&cost.Profile{Name: "spin", Steps: []cost.Step{{Kind: cost.StepCompute, Cycles: 1e7, Mix: cost.Mix{Int: 1}}}})
	vm.SpawnGuest("spin", loop)
	vm.PowerOn(hostos.PrioIdle)
	host.RunFor(2 * sim.Second)
	host.Settle()
	if vm.SvcProc == nil {
		t.Fatal("no service process spawned despite ServiceDuty > 0")
	}
	svcShare := vm.SvcProc.CPUTime().Seconds() / 2.0
	if math.Abs(svcShare-0.25) > 0.03 {
		t.Fatalf("service duty = %.3f of a core, want ≈0.25", svcShare)
	}
	vm.PowerOff()
	host.Sim.Run()
}

func TestVMHaltWakeOnGuestSleep(t *testing.T) {
	host := testHost(t)
	vm, err := New(host, Config{Prof: Native()})
	if err != nil {
		t.Fatal(err)
	}
	m := cost.NewMeter("sleeper")
	m.Int(1e6)
	m.Sleep(300 * sim.Millisecond)
	m.Int(1e6)
	vm.SpawnGuest("sleeper", m.Profile().Iter())
	vm.PowerOn(hostos.PrioNormal)
	if !host.RunUntilFinished(vm.Proc, 10*sim.Second) {
		t.Fatal("sleeping guest never finished")
	}
	host.Settle()
	// The vCPU must have burned ~no CPU during the guest's sleep.
	if cpu := vm.VCPU().CPUTime(); cpu > 50*sim.Millisecond {
		t.Fatalf("vCPU burned %v during a 300ms guest sleep", cpu)
	}
	if host.Sim.Now() < 300*sim.Millisecond {
		t.Fatal("guest sleep lost")
	}
}

func TestVirtualDiskChunking(t *testing.T) {
	host := testHost(t)
	vm, err := New(host, Config{Prof: testProfile()}) // 256 KB chunks
	if err != nil {
		t.Fatal(err)
	}
	m := cost.NewMeter("io")
	m.DiskWrite("f", 0, 1<<20)
	m.DiskSync("f")
	vm.SpawnGuest("io", m.Profile().Iter())
	vm.PowerOn(hostos.PrioNormal)
	if !host.RunUntilFinished(vm.Proc, 100*sim.Second) {
		t.Fatal("io guest never finished")
	}
	// 1 MB fsync through 256 KB chunks = 4 virtual disk commands.
	if vm.Disk.Chunks < 4 {
		t.Fatalf("chunks = %d, want ≥4 for 1MB/256KB", vm.Disk.Chunks)
	}
	if vm.EmulationCycles <= 0 {
		t.Fatal("no device-emulation cycles charged")
	}
}

func TestVirtualDiskSlowerThanNative(t *testing.T) {
	run := func(prof Profile) sim.Time {
		host := testHost(t)
		vm, err := New(host, Config{Prof: prof})
		if err != nil {
			t.Fatal(err)
		}
		m := cost.NewMeter("io")
		m.DiskWrite("f", 0, 8<<20)
		m.DiskSync("f")
		m.DiskRead("f", 8<<20, 0) // no-op guard
		vm.SpawnGuest("io", m.Profile().Iter())
		vm.PowerOn(hostos.PrioNormal)
		if !host.RunUntilFinished(vm.Proc, 1000*sim.Second) {
			t.Fatal("io guest never finished")
		}
		return host.Sim.Now()
	}
	nat := run(Native())
	vir := run(testProfile())
	if float64(vir) < 1.1*float64(nat) {
		t.Fatalf("virtual disk not visibly slower: %v vs %v", vir, nat)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	host := testHost(t)
	base := NewRawImage("base", 0, 1<<30)
	cow := NewCOWImage("ovl", base, 2<<30)
	vm, err := New(host, Config{Name: "ckpt", Prof: testProfile(), Image: cow})
	if err != nil {
		t.Fatal(err)
	}
	m := cost.NewMeter("io")
	m.DiskWrite("f", 0, 1<<20)
	m.DiskSync("f")
	vm.SpawnGuest("io", m.Profile().Iter())
	vm.PowerOn(hostos.PrioNormal)
	if !host.RunUntilFinished(vm.Proc, 100*sim.Second) {
		t.Fatal("guest never finished")
	}

	ck := vm.Checkpoint([]byte("workunit-progress=42%"))
	if ck.OverlayBytes == 0 {
		t.Fatal("checkpoint captured no overlay data despite guest writes")
	}
	blob, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(ck2.Payload) != "workunit-progress=42%" || ck2.VMName != "ckpt" {
		t.Fatalf("checkpoint payload corrupted: %+v", ck2)
	}

	// Migrate: restore on a different machine.
	host2 := testHost(t)
	base2 := NewRawImage("base", 0, 1<<30)
	cow2 := NewCOWImage("ovl", base2, 2<<30)
	vm2, err := New(host2, Config{Name: "ckpt2", Prof: testProfile(), Image: cow2})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm2.Restore(ck2); err != nil {
		t.Fatal(err)
	}
	if cow2.OverlayBytes() != ck.OverlayBytes {
		t.Fatalf("restored overlay %d bytes, want %d", cow2.OverlayBytes(), ck.OverlayBytes)
	}
}

func TestRestoreErrors(t *testing.T) {
	host := testHost(t)
	vm, err := New(host, Config{Prof: testProfile()}) // raw image
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{ProfileName: "test"}
	if err := vm.Restore(ck); err == nil {
		t.Fatal("restore onto raw image accepted")
	}
	ck.ProfileName = "other"
	if err := vm.Restore(ck); err == nil {
		t.Fatal("cross-profile restore accepted")
	}
}

func TestGuestClockDriftUnderLoad(t *testing.T) {
	host := testHost(t)
	vm, err := New(host, Config{Prof: testProfile()})
	if err != nil {
		t.Fatal(err)
	}
	loop := cost.Loop(&cost.Profile{Name: "spin", Steps: []cost.Step{{Kind: cost.StepCompute, Cycles: 1e7, Mix: cost.Mix{Int: 1}}}})
	vm.SpawnGuest("spin", loop)
	vm.PowerOn(hostos.PrioIdle)

	// Phase 1: idle host — guest keeps near-perfect time.
	host.RunFor(sim.Second)
	drift1 := (host.Sim.Now() - vm.startTime) - vm.GuestNow()

	// Phase 2: saturate both host cores with normal-priority work; the
	// idle-priority vCPU starves and the guest clock falls behind.
	hp := host.NewProcess("hog")
	for i := 0; i < 2; i++ {
		host.Spawn(hp, "hog", hostos.PrioNormal,
			cost.Loop(&cost.Profile{Name: "h", Steps: []cost.Step{{Kind: cost.StepCompute, Cycles: 1e7, Mix: cost.Mix{Int: 1}}}}))
	}
	host.RunFor(2 * sim.Second)
	drift2 := (host.Sim.Now() - vm.startTime) - vm.GuestNow()

	if drift1 > 100*sim.Millisecond {
		t.Fatalf("unloaded guest drifted %v in 1s", drift1)
	}
	if drift2 < 500*sim.Millisecond {
		t.Fatalf("starved guest drifted only %v in 2s of saturation", drift2)
	}
}

func TestNativeClockExact(t *testing.T) {
	host := testHost(t)
	vm, err := New(host, Config{Prof: Native()})
	if err != nil {
		t.Fatal(err)
	}
	loop := cost.Loop(&cost.Profile{Name: "spin", Steps: []cost.Step{{Kind: cost.StepCompute, Cycles: 1e7, Mix: cost.Mix{Int: 1}}}})
	vm.SpawnGuest("spin", loop)
	vm.PowerOn(hostos.PrioNormal)
	host.RunFor(sim.Second)
	if drift := sim.Second - vm.GuestNow(); drift > sim.Millisecond {
		t.Fatalf("native clock drifted %v", drift)
	}
}

func TestPowerOffIdempotentAndDoublePowerOnPanics(t *testing.T) {
	host := testHost(t)
	vm, err := New(host, Config{Prof: Native()})
	if err != nil {
		t.Fatal(err)
	}
	vm.SpawnGuest("w", (&cost.Profile{Name: "w", Steps: []cost.Step{{Kind: cost.StepCompute, Cycles: 1e6, Mix: cost.Mix{Int: 1}}}}).Iter())
	vm.PowerOn(hostos.PrioNormal)
	vm.PowerOff()
	vm.PowerOff() // idempotent
	host.Sim.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("double PowerOn did not panic")
		}
	}()
	vm.PowerOn(hostos.PrioNormal)
}

func TestNetModeString(t *testing.T) {
	if NetBridged.String() != "bridged" || NetNAT.String() != "nat" {
		t.Fatal("NetMode strings wrong")
	}
}
