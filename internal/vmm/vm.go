package vmm

import (
	"fmt"

	"vmdg/internal/cost"
	"vmdg/internal/guestos"
	"vmdg/internal/hostos"
	"vmdg/internal/sim"
)

// defaultImageSize is the virtual disk capacity when the caller does not
// supply an image (a small Ubuntu image, per the paper's setup).
const defaultImageSize = 4 << 30

// VM is one powered system-level virtual machine: a guest kernel, its
// emulated devices, the vCPU host thread that executes the transformed
// guest instruction stream, and the VMM's host-side service threads.
type VM struct {
	Name string
	Prof Profile

	hostOS *hostos.OS

	// Kernel is the guest operating system running inside this VM.
	Kernel *guestos.Kernel
	// Proc holds the vCPU thread; it finishes when the guest workload
	// does (or at PowerOff).
	Proc *hostos.Process
	// SvcProc holds the VMM's host-side service threads.
	SvcProc *hostos.Process

	// Disk and NIC are the emulated devices; Image backs Disk.
	Disk  *VirtualDisk
	NIC   *VirtualNIC
	Image Image

	vcpu        *hostos.Thread
	halted      bool
	haltStart   sim.Time
	haltedTotal sim.Time
	pendingEmu  float64
	poweredOff  bool
	startTime   sim.Time
	ramHeld     int64
	affinity    uint64

	// EmulationCycles counts device-emulation work executed on the vCPU.
	EmulationCycles float64
}

// Config parameterizes VM construction.
type Config struct {
	Name string
	Prof Profile
	// Image backs the virtual disk; nil allocates a raw image at ImageBase.
	Image Image
	// ImageBase places the default raw image on the host disk.
	ImageBase int64
	// CacheBytes overrides the guest page-cache size.
	CacheBytes int64
	// Affinity, if non-zero, confines the VM's threads (vCPU and service)
	// to the given core mask — how a volunteer caps a VM's footprint.
	Affinity uint64
}

// New builds a VM on the given host OS. The VM is constructed powered off;
// add guest threads via SpawnGuest and call PowerOn.
func New(host *hostos.OS, cfg Config) (*VM, error) {
	if err := cfg.Prof.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Prof.Name
	}
	vm := &VM{Name: cfg.Name, Prof: cfg.Prof, hostOS: host, affinity: cfg.Affinity}
	if cfg.Prof.RAMBytes > 0 {
		if err := host.M.Commit(cfg.Prof.RAMBytes); err != nil {
			return nil, fmt.Errorf("vmm: powering %s: %w", cfg.Name, err)
		}
		vm.ramHeld = cfg.Prof.RAMBytes
	}
	vm.Image = cfg.Image
	if vm.Image == nil {
		vm.Image = NewRawImage(cfg.Name+".img", cfg.ImageBase, defaultImageSize)
	}
	vm.Disk = newVirtualDisk(vm, vm.Image, host.M.Disk)
	vm.NIC = newVirtualNIC(vm, host.M.TX, host.M.RX)
	vm.Kernel = guestos.NewKernel(guestos.KernelConfig{
		Sim:        host.Sim,
		Disk:       vm.Disk,
		NIC:        vm.NIC,
		Clock:      vm,
		CacheBytes: cfg.CacheBytes,
	})
	return vm, nil
}

// SpawnGuest adds a guest thread executing prog inside the VM.
func (vm *VM) SpawnGuest(name string, prog cost.Program) *guestos.GThread {
	return vm.Kernel.SpawnG(name, prog)
}

// chargeEmulation queues host cycles of device-emulation work onto the
// vCPU's stream (trap-and-emulate work happens in the guest's context).
func (vm *VM) chargeEmulation(cycles float64) {
	if cycles > 0 {
		vm.pendingEmu += cycles
	}
}

// vcpuProgram adapts the guest kernel's stream into host work.
type vcpuProgram struct{ vm *VM }

// Next implements cost.Program.
func (p *vcpuProgram) Next() (cost.Step, bool) {
	vm := p.vm
	for {
		if vm.poweredOff {
			return cost.Step{}, false
		}
		if vm.pendingEmu > 0 {
			cy := vm.pendingEmu
			vm.pendingEmu = 0
			vm.EmulationCycles += cy
			return cost.Step{Kind: cost.StepCompute, Cycles: cy, Mix: EmuMix}, true
		}
		st, ok := vm.Kernel.Next()
		if !ok {
			return cost.Step{}, false // guest workload complete
		}
		switch st.Kind {
		case cost.StepCompute:
			return vm.Prof.ExpandStep(st), true
		case cost.StepHalt:
			return st, true
		default:
			panic(fmt.Sprintf("vmm: guest kernel leaked raw step %v", st.Kind))
		}
	}
}

// vcpuHandler services the halt step by parking the vCPU host thread.
type vcpuHandler struct{ vm *VM }

// Handle implements hostos.StepHandler.
func (h vcpuHandler) Handle(t *hostos.Thread, s cost.Step) bool {
	if s.Kind != cost.StepHalt {
		panic(fmt.Sprintf("vmm: vCPU handler got %v", s.Kind))
	}
	vm := h.vm
	vm.halted = true
	vm.haltStart = vm.hostOS.Sim.Now()
	return true
}

// PowerOn starts the vCPU at the given host priority (the paper tests
// Normal and Idle) plus the profile's service threads at above-normal
// priority, which is the point: the VMM's kernel-side components do not
// inherit the priority a volunteer assigns to the VM.
func (vm *VM) PowerOn(prio hostos.Priority) {
	if vm.vcpu != nil {
		panic("vmm: PowerOn on a running VM")
	}
	vm.startTime = vm.hostOS.Sim.Now()
	vm.Proc = vm.hostOS.NewProcess("vm:" + vm.Name)
	vm.Kernel.SetWake(vm.wakeVCPU)
	vm.vcpu = vm.hostOS.SpawnWithHandler(vm.Proc, vm.Name+"/vcpu", prio,
		&vcpuProgram{vm: vm}, vcpuHandler{vm: vm})
	vm.vcpu.Affinity = vm.affinity

	if vm.Prof.ServiceDuty > 0 {
		vm.SvcProc = vm.hostOS.NewProcess("vmm-svc:" + vm.Name)
		burst := vm.Prof.ServiceDuty * vm.Prof.ServicePeriod.Seconds() * vm.hostOS.M.CPU.FreqHz
		idle := sim.Time(float64(vm.Prof.ServicePeriod) * (1 - vm.Prof.ServiceDuty))
		svc := &serviceProgram{vm: vm, burst: burst, mix: vm.Prof.ServiceMix, idle: idle}
		th := vm.hostOS.SpawnWithHandler(vm.SvcProc, vm.Name+"/svc", hostos.PrioAboveNormal, svc, nil)
		th.Affinity = vm.affinity
		// Service work displaces the VM it serves when possible: prefer
		// preempting the vCPU's own core.
		th.VictimHint = func() int {
			if vm.vcpu != nil && vm.vcpu.Running() {
				return vm.vcpu.Core()
			}
			return -1
		}
	}
}

// wakeVCPU resumes a halted vCPU when a guest interrupt arrives.
func (vm *VM) wakeVCPU() {
	if !vm.halted || vm.poweredOff {
		return
	}
	vm.halted = false
	vm.haltedTotal += vm.hostOS.Sim.Now() - vm.haltStart
	vm.hostOS.Unblock(vm.vcpu)
}

// PowerOff stops the vCPU and service threads and releases guest RAM.
// In-flight device operations drain naturally.
func (vm *VM) PowerOff() {
	if vm.poweredOff {
		return
	}
	vm.poweredOff = true
	if vm.halted {
		vm.halted = false
		vm.haltedTotal += vm.hostOS.Sim.Now() - vm.haltStart
		vm.hostOS.Unblock(vm.vcpu) // resumes, sees poweredOff, exits
	}
	if vm.ramHeld > 0 {
		vm.hostOS.M.Release(vm.ramHeld)
		vm.ramHeld = 0
	}
}

// GuestFinished reports whether every guest thread has exited.
func (vm *VM) GuestFinished() bool { return vm.Kernel.AllFinished() }

// VCPU exposes the vCPU thread for experiment accounting.
func (vm *VM) VCPU() *hostos.Thread { return vm.vcpu }

// GuestNow implements guestos.ClockSource with tick-loss drift: virtual
// time the vCPU spent neither scheduled nor intentionally halted is time
// during which timer ticks were lost; the guest clock lags by TickLoss of
// it. With an unloaded host this is ≈ 0; under host CPU pressure it grows,
// reproducing the paper's warning about in-guest timing.
func (vm *VM) GuestNow() sim.Time {
	if vm.vcpu == nil {
		return 0
	}
	vm.hostOS.Settle()
	now := vm.hostOS.Sim.Now()
	wall := now - vm.startTime
	halted := vm.haltedTotal
	if vm.halted {
		halted += now - vm.haltStart
	}
	lost := wall - vm.vcpu.CPUTime() - halted
	if lost < 0 {
		lost = 0
	}
	return wall - sim.Time(vm.Prof.TickLoss*float64(lost))
}

// serviceProgram is the VMM's host-side footprint: an endless duty cycle
// of elevated-priority work that exists while the VM is powered on.
type serviceProgram struct {
	vm    *VM
	burst float64
	mix   cost.Mix
	idle  sim.Time
	phase bool // false: emit burst next; true: emit idle next
}

// Next implements cost.Program.
func (sp *serviceProgram) Next() (cost.Step, bool) {
	if sp.vm.poweredOff {
		return cost.Step{}, false
	}
	sp.phase = !sp.phase
	if sp.phase {
		return cost.Step{Kind: cost.StepCompute, Cycles: sp.burst, Mix: sp.mix}, true
	}
	return cost.Step{Kind: cost.StepSleep, Dur: sp.idle}, true
}
