package vmm

import (
	"fmt"
	"sort"
)

// Image maps guest block addresses to host-disk addresses. Implementations
// also report a per-operation translation cost in host cycles, so richer
// formats (copy-on-write overlays) are visibly more expensive than raw
// images — the flexibility-vs-performance trade-off Csaba et al. accept
// for QEMU's overlay images (§5).
type Image interface {
	// Translate maps a guest extent to one or more host extents. A write
	// may allocate (COW); reads of unallocated overlay blocks fall through
	// to the base image.
	Translate(off, bytes int64, write bool) []Extent
	// TranslateCost is the host-cycle cost of one Translate call.
	TranslateCost() float64
	// SizeBytes is the virtual disk capacity.
	SizeBytes() int64
}

// Extent is a contiguous run on the host disk.
type Extent struct {
	HostOff int64
	Bytes   int64
	// FileID distinguishes the backing files (base vs overlay) so the host
	// disk model sees distinct seek targets.
	FileID string
}

// RawImage is a flat preallocated image file: translation is a constant
// offset into one host file.
type RawImage struct {
	Name string
	Base int64 // placement of the image file on the host disk
	Size int64
}

// NewRawImage creates a raw image of size bytes placed at host offset base.
func NewRawImage(name string, base, size int64) *RawImage {
	if size <= 0 {
		panic(fmt.Sprintf("vmm: raw image size %d", size))
	}
	return &RawImage{Name: name, Base: base, Size: size}
}

// Translate implements Image.
func (r *RawImage) Translate(off, bytes int64, _ bool) []Extent {
	if off < 0 || off+bytes > r.Size {
		panic(fmt.Sprintf("vmm: raw image access [%d,%d) outside size %d", off, off+bytes, r.Size))
	}
	return []Extent{{HostOff: r.Base + off, Bytes: bytes, FileID: r.Name}}
}

// TranslateCost implements Image: a raw offset add is nearly free.
func (r *RawImage) TranslateCost() float64 { return 200 }

// SizeBytes implements Image.
func (r *RawImage) SizeBytes() int64 { return r.Size }

// cowClusterSize is the allocation granularity of COW overlays (64 KB,
// matching qcow-family formats).
const cowClusterSize = 64 << 10

// COWImage overlays a writable delta file on a read-only base image. The
// first write to a cluster copies it into the overlay; reads prefer the
// overlay and fall back to the base. This is the mechanism that lets many
// VM instances share one base image (§5, Csaba et al.) and what makes the
// checkpoint/migration story cheap: only the overlay moves.
type COWImage struct {
	Name string
	Base Image

	// overlay maps cluster index -> host offset within the overlay file.
	overlay     map[int64]int64
	overlayBase int64 // placement of the overlay file on the host disk
	nextAlloc   int64

	// Stats
	AllocatedClusters int
	CopyOnWrites      uint64
}

// NewCOWImage stacks a fresh overlay (placed at host offset overlayBase)
// on base.
func NewCOWImage(name string, base Image, overlayBase int64) *COWImage {
	return &COWImage{
		Name:        name,
		Base:        base,
		overlay:     make(map[int64]int64),
		overlayBase: overlayBase,
	}
}

// Translate implements Image.
func (c *COWImage) Translate(off, bytes int64, write bool) []Extent {
	if off < 0 || off+bytes > c.SizeBytes() {
		panic(fmt.Sprintf("vmm: cow image access [%d,%d) outside size %d", off, off+bytes, c.SizeBytes()))
	}
	var out []Extent
	for bytes > 0 {
		cluster := off / cowClusterSize
		inOff := off % cowClusterSize
		n := cowClusterSize - inOff
		if n > bytes {
			n = bytes
		}
		hostOff, allocated := c.overlay[cluster]
		switch {
		case allocated:
			out = append(out, Extent{HostOff: c.overlayBase + hostOff + inOff, Bytes: n, FileID: c.Name})
		case write:
			// Copy-on-write: allocate the cluster in the overlay.
			hostOff = c.nextAlloc
			c.nextAlloc += cowClusterSize
			c.overlay[cluster] = hostOff
			c.AllocatedClusters++
			c.CopyOnWrites++
			out = append(out, Extent{HostOff: c.overlayBase + hostOff + inOff, Bytes: n, FileID: c.Name})
		default:
			// Read of an unwritten cluster: serve from the base image.
			out = append(out, c.Base.Translate(off, n, false)...)
		}
		off += n
		bytes -= n
	}
	return coalesceExtents(out)
}

// TranslateCost implements Image: map lookups and allocation logic.
func (c *COWImage) TranslateCost() float64 { return 2500 }

// SizeBytes implements Image.
func (c *COWImage) SizeBytes() int64 { return c.Base.SizeBytes() }

// OverlayBytes reports how much delta data the overlay holds.
func (c *COWImage) OverlayBytes() int64 { return int64(c.AllocatedClusters) * cowClusterSize }

// OverlayTable exports the cluster map for checkpointing, in deterministic
// order.
func (c *COWImage) OverlayTable() [][2]int64 {
	out := make([][2]int64, 0, len(c.overlay))
	for k, v := range c.overlay {
		out = append(out, [2]int64{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// RestoreOverlayTable reinstates a previously exported cluster map.
func (c *COWImage) RestoreOverlayTable(table [][2]int64) {
	c.overlay = make(map[int64]int64, len(table))
	c.nextAlloc = 0
	for _, kv := range table {
		c.overlay[kv[0]] = kv[1]
		if end := kv[1] + cowClusterSize; end > c.nextAlloc {
			c.nextAlloc = end
		}
	}
	c.AllocatedClusters = len(table)
}

// coalesceExtents merges adjacent extents on the same backing file.
func coalesceExtents(in []Extent) []Extent {
	if len(in) <= 1 {
		return in
	}
	out := in[:1]
	for _, e := range in[1:] {
		last := &out[len(out)-1]
		if e.FileID == last.FileID && last.HostOff+last.Bytes == e.HostOff {
			last.Bytes += e.Bytes
			continue
		}
		out = append(out, e)
	}
	return out
}
