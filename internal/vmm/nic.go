package vmm

import (
	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

// serviceQueue is a single-server FIFO queue with caller-supplied service
// times — the shape of both a device-emulation path and a userspace NAT
// proxy. A non-zero capacity bounds the number of items awaiting service
// (a proxy's socket buffer); arrivals beyond it are dropped.
type serviceQueue struct {
	s         *sim.Simulator
	busyUntil sim.Time
	cap       int // 0 = unbounded
	queued    int
	Served    uint64
	Dropped   uint64
}

// enqueue schedules fn to run once the server has processed this item,
// service time d, FIFO behind earlier items. It reports false (and drops
// the item) when the queue is full.
func (q *serviceQueue) enqueue(d sim.Time, fn func()) bool {
	if q.cap > 0 && q.queued >= q.cap {
		q.Dropped++
		return false
	}
	start := q.s.Now()
	if q.busyUntil > start {
		start = q.busyUntil
	}
	q.busyUntil = start + d
	q.Served++
	q.queued++
	q.s.At(q.busyUntil, "svcq", func() {
		q.queued--
		fn()
	})
	return true
}

// VirtualNIC implements guestos.NetDevice. In bridged mode each direction
// has its own emulation queue in front of the physical link; in NAT mode
// both directions share one proxy queue — the single-server bottleneck
// that collapses NAT throughput in Figure 4.
type VirtualNIC struct {
	vm *VM
	tx *hw.Link // guest -> LAN
	rx *hw.Link // LAN -> guest

	txq, rxq *serviceQueue
	natq     *serviceQueue // shared, NAT mode only

	// Stats
	FramesOut, FramesIn uint64
}

func newVirtualNIC(vm *VM, tx, rx *hw.Link) *VirtualNIC {
	s := vm.hostOS.Sim
	n := &VirtualNIC{vm: vm, tx: tx, rx: rx}
	if vm.Prof.NetMode == NetNAT {
		n.natq = &serviceQueue{s: s, cap: vm.Prof.natQueueFrames()}
		n.txq, n.rxq = n.natq, n.natq
	} else {
		n.txq = &serviceQueue{s: s}
		n.rxq = &serviceQueue{s: s}
	}
	return n
}

// serviceTime is the emulation/proxy cost for one frame.
func (n *VirtualNIC) serviceTime(ipBytes int64) sim.Time {
	p := n.vm.Prof
	return p.NetPerFrame + sim.Time(int64(p.NetPerByte)*ipBytes)
}

// SendSegment implements guestos.NetDevice: device path, then the wire.
// Frames the proxy queue cannot hold are dropped, as a real NAT's socket
// buffer does under UDP overload.
func (n *VirtualNIC) SendSegment(ipBytes int64, deliverToPeer func()) {
	n.FramesOut++
	n.vm.chargeEmulation(n.vm.Prof.NetCPUPerFrame)
	n.txq.enqueue(n.serviceTime(ipBytes), func() {
		n.tx.Transmit(ipBytes, deliverToPeer)
	})
}

// Drops reports frames lost to a full proxy queue.
func (n *VirtualNIC) Drops() uint64 {
	var d uint64
	d += n.txq.Dropped
	if n.rxq != n.txq {
		d += n.rxq.Dropped
	}
	return d
}

// ReturnSegment implements guestos.NetDevice: the wire, then the device
// path back up into the guest.
func (n *VirtualNIC) ReturnSegment(ipBytes int64, deliverToGuest func()) {
	n.rx.Transmit(ipBytes, func() {
		n.FramesIn++
		n.vm.chargeEmulation(n.vm.Prof.NetCPUPerFrame)
		n.rxq.enqueue(n.serviceTime(ipBytes), deliverToGuest)
	})
}
