package vmm

import (
	"encoding/binary"
	"fmt"

	"vmdg/internal/sim"
)

// Checkpoint is the transportable persistent state of a VM: what survives
// a save/restore or a migration to another physical machine. Like a real
// system-level snapshot taken at a quiescent point, it captures durable
// state — the copy-on-write overlay of the disk image plus an opaque
// workload payload (e.g. a BOINC client's work-unit progress file) — and
// the guest clock.
type Checkpoint struct {
	VMName       string
	ProfileName  string
	TakenAtHost  sim.Time
	TakenAtGuest sim.Time
	OverlayTable [][2]int64
	OverlayBytes int64
	Payload      []byte
}

// Checkpoint captures the VM's durable state. payload carries
// workload-level progress the caller wants to travel with the VM.
func (vm *VM) Checkpoint(payload []byte) *Checkpoint {
	ck := &Checkpoint{
		VMName:       vm.Name,
		ProfileName:  vm.Prof.Name,
		TakenAtHost:  vm.hostOS.Sim.Now(),
		TakenAtGuest: vm.GuestNow(),
		Payload:      append([]byte(nil), payload...),
	}
	if cow, ok := vm.Image.(*COWImage); ok {
		ck.OverlayTable = cow.OverlayTable()
		ck.OverlayBytes = cow.OverlayBytes()
	}
	return ck
}

// ckVersion tags the wire layout of an encoded checkpoint. The codec is
// hand-rolled varint framing rather than encoding/gob: a churning
// million-host fleet evicts VMs hundreds of millions of times, and gob
// recompiles its type descriptors on every fresh Decoder — two orders
// of magnitude more work than the checkpoint's actual bytes.
const ckVersion = 1

// Encode serializes the checkpoint for transport to another machine.
func (ck *Checkpoint) Encode() ([]byte, error) {
	n := 1 + 2*binary.MaxVarintLen64 + // version + times
		2*binary.MaxVarintLen64 + len(ck.VMName) + len(ck.ProfileName) +
		binary.MaxVarintLen64 + len(ck.OverlayTable)*2*binary.MaxVarintLen64 +
		binary.MaxVarintLen64 + // OverlayBytes
		binary.MaxVarintLen64 + len(ck.Payload)
	b := make([]byte, 1, n)
	b[0] = ckVersion
	b = appendString(b, ck.VMName)
	b = appendString(b, ck.ProfileName)
	b = binary.AppendVarint(b, int64(ck.TakenAtHost))
	b = binary.AppendVarint(b, int64(ck.TakenAtGuest))
	b = binary.AppendUvarint(b, uint64(len(ck.OverlayTable)))
	for _, pair := range ck.OverlayTable {
		b = binary.AppendVarint(b, pair[0])
		b = binary.AppendVarint(b, pair[1])
	}
	b = binary.AppendVarint(b, ck.OverlayBytes)
	b = binary.AppendUvarint(b, uint64(len(ck.Payload)))
	b = append(b, ck.Payload...)
	return b, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// DecodeCheckpoint reverses Encode.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	d := ckDecoder{buf: data}
	if v := d.byte(); v != ckVersion {
		return nil, fmt.Errorf("vmm: decoding checkpoint: unknown version %d", v)
	}
	ck := &Checkpoint{}
	ck.VMName = d.string()
	ck.ProfileName = d.string()
	ck.TakenAtHost = sim.Time(d.varint())
	ck.TakenAtGuest = sim.Time(d.varint())
	if n := d.uvarint(); n > 0 {
		if 2*n > uint64(len(d.buf)) { // each pair needs ≥ 2 bytes
			return nil, fmt.Errorf("vmm: decoding checkpoint: overlay table length %d exceeds data", n)
		}
		ck.OverlayTable = make([][2]int64, n)
		for i := range ck.OverlayTable {
			ck.OverlayTable[i][0] = d.varint()
			ck.OverlayTable[i][1] = d.varint()
		}
	}
	ck.OverlayBytes = d.varint()
	ck.Payload = d.bytes()
	if d.err != nil {
		return nil, fmt.Errorf("vmm: decoding checkpoint: %w", d.err)
	}
	return ck, nil
}

// ckDecoder reads the checkpoint wire format, latching the first error.
type ckDecoder struct {
	buf []byte
	err error
}

var errCkTruncated = fmt.Errorf("truncated checkpoint")

func (d *ckDecoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.err = errCkTruncated
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *ckDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = errCkTruncated
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *ckDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errCkTruncated
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *ckDecoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.err = errCkTruncated
		return nil
	}
	out := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return out
}

func (d *ckDecoder) string() string {
	return string(d.bytes())
}

// Restore applies a checkpoint to a freshly constructed (not yet powered)
// VM on any host: the overlay table is reinstated over the VM's base
// image. The caller resumes the workload from ck.Payload. It errors if the
// VM's image is not a COW overlay or profiles mismatch.
func (vm *VM) Restore(ck *Checkpoint) error {
	if vm.vcpu != nil {
		return fmt.Errorf("vmm: restore into powered-on VM %s", vm.Name)
	}
	if vm.Prof.Name != ck.ProfileName {
		return fmt.Errorf("vmm: checkpoint from profile %s restored into %s", ck.ProfileName, vm.Prof.Name)
	}
	cow, ok := vm.Image.(*COWImage)
	if !ok {
		return fmt.Errorf("vmm: restore requires a COW image, VM %s has %T", vm.Name, vm.Image)
	}
	cow.RestoreOverlayTable(ck.OverlayTable)
	return nil
}
