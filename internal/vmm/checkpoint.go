package vmm

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"vmdg/internal/sim"
)

// Checkpoint is the transportable persistent state of a VM: what survives
// a save/restore or a migration to another physical machine. Like a real
// system-level snapshot taken at a quiescent point, it captures durable
// state — the copy-on-write overlay of the disk image plus an opaque
// workload payload (e.g. a BOINC client's work-unit progress file) — and
// the guest clock.
type Checkpoint struct {
	VMName       string
	ProfileName  string
	TakenAtHost  sim.Time
	TakenAtGuest sim.Time
	OverlayTable [][2]int64
	OverlayBytes int64
	Payload      []byte
}

// Checkpoint captures the VM's durable state. payload carries
// workload-level progress the caller wants to travel with the VM.
func (vm *VM) Checkpoint(payload []byte) *Checkpoint {
	ck := &Checkpoint{
		VMName:       vm.Name,
		ProfileName:  vm.Prof.Name,
		TakenAtHost:  vm.hostOS.Sim.Now(),
		TakenAtGuest: vm.GuestNow(),
		Payload:      append([]byte(nil), payload...),
	}
	if cow, ok := vm.Image.(*COWImage); ok {
		ck.OverlayTable = cow.OverlayTable()
		ck.OverlayBytes = cow.OverlayBytes()
	}
	return ck
}

// Encode serializes the checkpoint for transport to another machine.
func (ck *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, fmt.Errorf("vmm: encoding checkpoint of %s: %w", ck.VMName, err)
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint reverses Encode.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("vmm: decoding checkpoint: %w", err)
	}
	return &ck, nil
}

// Restore applies a checkpoint to a freshly constructed (not yet powered)
// VM on any host: the overlay table is reinstated over the VM's base
// image. The caller resumes the workload from ck.Payload. It errors if the
// VM's image is not a COW overlay or profiles mismatch.
func (vm *VM) Restore(ck *Checkpoint) error {
	if vm.vcpu != nil {
		return fmt.Errorf("vmm: restore into powered-on VM %s", vm.Name)
	}
	if vm.Prof.Name != ck.ProfileName {
		return fmt.Errorf("vmm: checkpoint from profile %s restored into %s", ck.ProfileName, vm.Prof.Name)
	}
	cow, ok := vm.Image.(*COWImage)
	if !ok {
		return fmt.Errorf("vmm: restore requires a COW image, VM %s has %T", vm.Name, vm.Image)
	}
	cow.RestoreOverlayTable(ck.OverlayTable)
	return nil
}
