package profiles

import (
	"testing"

	"vmdg/internal/cost"
	"vmdg/internal/vmm"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range append(All(), VMwarePlayerNAT(), Native()) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestAllReturnsPaperOrder(t *testing.T) {
	got := All()
	want := []string{"vmplayer", "qemu", "virtualbox", "virtualpc"}
	if len(got) != len(want) {
		t.Fatalf("%d profiles", len(got))
	}
	for i, p := range got {
		if p.Name != want[i] {
			t.Errorf("profile %d = %s, want %s", i, p.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"vmplayer", "vmplayer-nat", "qemu", "virtualbox", "virtualpc", "native"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) = %v,%v", name, p.Name, ok)
		}
	}
	if _, ok := ByName("xen"); ok {
		t.Error("ByName accepted an unknown environment")
	}
}

func TestGuestRAMMatchesPaper(t *testing.T) {
	for _, p := range All() {
		if p.RAMBytes != 300<<20 {
			t.Errorf("%s commits %d bytes, paper configures 300 MB", p.Name, p.RAMBytes)
		}
	}
	if Native().RAMBytes != 0 {
		t.Error("native baseline should not reserve guest RAM")
	}
}

// sevenzMix approximates the captured 7z benchmark mix (§ calibration).
var sevenzMix = cost.Mix{Int: 0.5, Mem: 0.5}

// matrixMix approximates the captured Matrix mix.
var matrixMix = cost.Mix{Int: 0.083, FP: 0.667, Mem: 0.25}

func TestExpansionOrderingMatchesFigure1(t *testing.T) {
	// vmplayer < virtualbox < virtualpc < qemu on the integer benchmark.
	f := func(p vmm.Profile) float64 { return p.ExpandFactor(sevenzMix) }
	if !(f(VMwarePlayer()) < f(VirtualBox()) && f(VirtualBox()) < f(VirtualPC()) && f(VirtualPC()) < f(QEMU())) {
		t.Errorf("fig1 expansion ordering broken: %v %v %v %v",
			f(VMwarePlayer()), f(VirtualBox()), f(VirtualPC()), f(QEMU()))
	}
}

func TestFPMilderThanIntForEveryEnvironment(t *testing.T) {
	for _, p := range All() {
		if p.ExpandFactor(matrixMix) >= p.ExpandFactor(sevenzMix) {
			t.Errorf("%s: FP-heavy work not milder than int-heavy", p.Name)
		}
	}
}

func TestVMwareIsFastestGuestAndMostIntrusiveHost(t *testing.T) {
	// The paper's headline inverse relation, at the parameter level.
	vmp := VMwarePlayer()
	for _, other := range []vmm.Profile{QEMU(), VirtualBox(), VirtualPC()} {
		if vmp.ExpandFactor(sevenzMix) >= other.ExpandFactor(sevenzMix) {
			t.Errorf("vmplayer not fastest vs %s", other.Name)
		}
		if vmp.ServiceDuty <= 2.5*other.ServiceDuty {
			t.Errorf("vmplayer service duty %.2f not ≫ %s's %.2f (paper: ≈3×)",
				vmp.ServiceDuty, other.Name, other.ServiceDuty)
		}
	}
}

func TestNATModesMatchPaperSetups(t *testing.T) {
	if VMwarePlayer().NetMode != vmm.NetBridged {
		t.Error("vmplayer default should be bridged (Figure 4's 96 Mbps bar)")
	}
	if VMwarePlayerNAT().NetMode != vmm.NetNAT {
		t.Error("vmplayer-nat should be NAT")
	}
	if VirtualBox().NetMode != vmm.NetNAT {
		t.Error("virtualbox 1.6 measured through its default NAT")
	}
	if QEMU().NetMode != vmm.NetBridged || VirtualPC().NetMode != vmm.NetBridged {
		t.Error("qemu/virtualpc modelled as bridged")
	}
}

func TestQEMUHasSlowestDiskPath(t *testing.T) {
	q := QEMU()
	for _, other := range []vmm.Profile{VMwarePlayer(), VirtualBox(), VirtualPC()} {
		if q.DiskPerOp <= other.DiskPerOp {
			t.Errorf("qemu DiskPerOp %v not above %s's %v", q.DiskPerOp, other.Name, other.DiskPerOp)
		}
		if q.DiskChunk >= other.DiskChunk {
			t.Errorf("qemu DiskChunk %d not below %s's %d", q.DiskChunk, other.Name, other.DiskChunk)
		}
	}
}

func TestTickLossEnablesDriftEverywhere(t *testing.T) {
	for _, p := range All() {
		if p.TickLoss <= 0 {
			t.Errorf("%s has no clock drift; §4's timing warning would not reproduce", p.Name)
		}
	}
	if Native().TickLoss != 0 {
		t.Error("native clock must be exact")
	}
}
