// Package profiles holds the calibrated cost models of the four virtual
// machine environments evaluated in the paper (§3): VMware Player 2.0.2,
// QEMU 0.9 + KQEMU 1.3, VirtualBox 1.6.2 OSE, and Microsoft VirtualPC 2007.
//
// Calibration philosophy: each parameter encodes a *mechanism* reported in
// the paper or its citations, and the magnitudes are fitted so that the
// simulated Figures 1–8 land on the published values. The per-environment
// character is:
//
//   - VmPlayer: mature binary translation — near-native user code, the best
//     disk and network paths, but the heaviest host-side service footprint
//     (its speed is bought with host CPU; §4.2.3 measures it at ≈3× the
//     other environments' intrusiveness).
//   - QEMU(+kqemu): dynamic translation with a software-leaning device
//     model — the slowest CPU and disk paths (≈2× CPU, ≈5× disk) but a
//     respectable network path (§4.1).
//   - VirtualBox 1.6: young binary translator with QEMU-derived devices —
//     mid-pack CPU, ≈2× disk, and a notoriously slow userspace NAT
//     (≈75× below native, §4.1).
//   - VirtualPC: full virtualization with no Linux guest additions —
//     the largest trap costs among the translators, ≈2× disk, mid network.
//
// All four commit 300 MB of guest RAM at power-on (§4).
package profiles

import (
	"vmdg/internal/cost"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
)

// GuestRAM is the configured virtual machine memory (§4).
const GuestRAM = 300 << 20

// svcPeriod is the duty-cycle period of host-side VMM service work.
const svcPeriod = 20 * sim.Millisecond

// svcMix: VMM kernel components are branchy integer code with modest
// memory traffic, so they steal time (Fig. 7) without saturating the
// shared bus (keeping Fig. 5 overheads small).
var svcMix = cost.Mix{Int: 0.9, Mem: 0.1}

// Native is the bare-hardware baseline ("native Ubuntu", the unit line of
// Figures 1–3 and the 97.60 Mbps of Figure 4).
func Native() vmm.Profile { return vmm.Native() }

// VMwarePlayer models VMware Player 2.0.2 with bridged networking (the
// configuration of Figures 1–3 and the 96.02 Mbps bar of Figure 4).
func VMwarePlayer() vmm.Profile {
	return vmm.Profile{
		Name:      "vmplayer",
		IntExpand: 1.08, FPExpand: 1.02, MemExpand: 1.18, KernelExpand: 3.0,

		DiskPerOp: 600 * sim.Microsecond, DiskChunk: 2 << 20, DiskCPUPerOp: 150e3,

		NetMode:     vmm.NetBridged,
		NetPerFrame: 60 * sim.Microsecond, NetCPUPerFrame: 8e3,

		ServiceDuty: 0.68, ServicePeriod: svcPeriod, ServiceMix: svcMix,
		TickLoss: 0.80,
		RAMBytes: GuestRAM,
	}
}

// VMwarePlayerNAT is VMware Player with NAT networking: the same engine,
// but every frame crosses the userspace NAT proxy (3.68 Mbps in Figure 4).
func VMwarePlayerNAT() vmm.Profile {
	p := VMwarePlayer()
	p.Name = "vmplayer-nat"
	p.NetMode = vmm.NetNAT
	p.NetPerFrame = 600 * sim.Microsecond
	p.NetPerByte = 1500 * sim.Nanosecond
	p.NetCPUPerFrame = 40e3
	return p
}

// QEMU models QEMU 0.9 with the KQEMU 1.3 accelerator: user code is
// dynamically translated (≈2× integer), floating point mostly rides the
// host FPU (Figure 2's modest 1.3×), and the emulated IDE path is the
// slowest of the set (Figure 3's ≈4.9×). Its network path is
// surprisingly competitive (Figure 4's 65.91 Mbps).
func QEMU() vmm.Profile {
	return vmm.Profile{
		Name:      "qemu",
		IntExpand: 3.20, FPExpand: 1.10, MemExpand: 1.10, KernelExpand: 6.0,

		DiskPerOp: 5900 * sim.Microsecond, DiskChunk: 128 << 10, DiskCPUPerOp: 500e3,

		NetMode:     vmm.NetBridged,
		NetPerFrame: 178 * sim.Microsecond, NetCPUPerFrame: 25e3,

		ServiceDuty: 0.17, ServicePeriod: svcPeriod, ServiceMix: svcMix,
		TickLoss: 0.90,
		RAMBytes: GuestRAM,
	}
}

// VirtualBox models VirtualBox 1.6.2 OSE with its default NAT networking
// (the ≈75×-slower bar of Figure 4). CPU is binary-translated, devices
// derive from QEMU's.
func VirtualBox() vmm.Profile {
	return vmm.Profile{
		Name:      "virtualbox",
		IntExpand: 1.12, FPExpand: 1.04, MemExpand: 1.26, KernelExpand: 3.6,

		DiskPerOp: 1700 * sim.Microsecond, DiskChunk: 512 << 10, DiskCPUPerOp: 300e3,

		NetMode:     vmm.NetNAT,
		NetPerFrame: 1900 * sim.Microsecond, NetPerByte: 4 * sim.Microsecond,
		NetCPUPerFrame: 60e3,

		ServiceDuty: 0.15, ServicePeriod: svcPeriod, ServiceMix: svcMix,
		TickLoss: 0.75,
		RAMBytes: GuestRAM,
	}
}

// VirtualPC models Microsoft VirtualPC 2007 running an unsupported Linux
// guest (no guest additions, §3.4): the largest translator overheads and a
// mid-pack device model.
func VirtualPC() vmm.Profile {
	return vmm.Profile{
		Name:      "virtualpc",
		IntExpand: 1.25, FPExpand: 1.08, MemExpand: 1.45, KernelExpand: 5.0,

		DiskPerOp: 1700 * sim.Microsecond, DiskChunk: 512 << 10, DiskCPUPerOp: 300e3,

		NetMode:     vmm.NetBridged,
		NetPerFrame: 330 * sim.Microsecond, NetCPUPerFrame: 30e3,

		ServiceDuty: 0.15, ServicePeriod: svcPeriod, ServiceMix: svcMix,
		TickLoss: 0.75,
		RAMBytes: GuestRAM,
	}
}

// All returns the four virtualized environments in the paper's
// presentation order. Network experiments additionally use
// VMwarePlayerNAT and Native.
func All() []vmm.Profile {
	return []vmm.Profile{VMwarePlayer(), QEMU(), VirtualBox(), VirtualPC()}
}

// Named returns every resolvable profile: the four environments of All
// plus VMwarePlayerNAT and Native. ByName resolves exactly this set,
// so error messages built from Named never drift from it.
func Named() []vmm.Profile {
	return append(All(), VMwarePlayerNAT(), Native())
}

// ByName resolves a profile by its Name field (including "native" and
// "vmplayer-nat"); it returns false for unknown names.
func ByName(name string) (vmm.Profile, bool) {
	for _, p := range Named() {
		if p.Name == name {
			return p, true
		}
	}
	return vmm.Profile{}, false
}
