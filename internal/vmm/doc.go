// Package vmm models the system-level virtual machine monitors the
// paper evaluates (VMware Player, QEMU+KQEMU, VirtualBox, VirtualPC):
// the machinery that turns a guest kernel's instruction stream into
// host work.
//
// A VM couples four mechanisms, each with a calibrated Profile knob:
//
//   - Execution expansion: guest compute cycles widen per class
//     (integer, FP, memory, kernel) as they pass through binary
//     translation or emulation.
//   - Device emulation: virtual disk and NIC commands pay per-op
//     latency and inject host-side emulation cycles into the vCPU
//     stream; images can be raw or copy-on-write overlays.
//   - Host-side service footprint: a duty cycle of elevated-priority
//     host threads that exists while the VM is powered on — the
//     paper's central intrusiveness mechanism, since it does not
//     inherit the idle priority a volunteer assigns to the VM.
//   - Guest clock drift: timer ticks lost while the vCPU is
//     descheduled make in-guest timing unreliable (§4), motivating the
//     external UDP timing methodology.
//
// Checkpoints capture a VM's durable state — the copy-on-write overlay
// plus an opaque workload payload — for save/restore and migration;
// the desktop-grid fleet (internal/grid) uses them to survive
// volunteer churn.
package vmm
