// Package vmm implements the system-level virtual machine monitor
// framework: a vCPU execution engine that transforms the guest kernel's
// instruction stream by per-class cost expansion, emulated block and
// network devices with their own service queues, copy-on-write disk
// images, checkpoint/restore, and the host-side service footprint that
// makes a VMM intrusive.
//
// One Profile instance describes one of the paper's four environments
// (plus the native baseline); the numeric calibration for each lives in
// vmdg/internal/vmm/profiles.
package vmm

import (
	"fmt"
	"math"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

// NetMode selects the virtual NIC's connection to the LAN.
type NetMode int

const (
	// NetBridged attaches the guest to the LAN as a peer station; frames
	// pay only device-emulation costs.
	NetBridged NetMode = iota
	// NetNAT routes frames through a userspace proxy in the VMM; both
	// directions share the proxy's single service queue, the mechanism
	// behind the paper's 3.68 Mbps (VmPlayer) and ~75× (VirtualBox)
	// NAT collapses.
	NetNAT
)

func (m NetMode) String() string {
	if m == NetNAT {
		return "nat"
	}
	return "bridged"
}

// Profile is the complete cost model of one virtualization environment.
type Profile struct {
	Name string

	// Execution expansion: host cycles spent per guest cycle, by class.
	// Binary translators keep user-mode integer near 1; pure emulation
	// (QEMU without kernel module assistance on privileged paths) pushes
	// everything up. Kernel-class expansion is the dominant term for
	// I/O-bound guests: every privileged instruction traps or is
	// retranslated.
	IntExpand    float64
	FPExpand     float64
	MemExpand    float64
	KernelExpand float64

	// Virtual disk emulation.
	DiskPerOp    sim.Time // latency added per virtual disk command
	DiskChunk    int64    // largest transfer per virtual disk command (0 = unlimited)
	DiskCPUPerOp float64  // host cycles of device-emulation work per command

	// Virtual NIC.
	NetMode        NetMode
	NetPerFrame    sim.Time // device-path service time per frame
	NetPerByte     sim.Time // additional service per payload byte
	NetCPUPerFrame float64  // host cycles of emulation per frame
	// NATQueueFrames bounds the NAT proxy's pending-frame buffer
	// (0 takes the default). TCP's 64 KB window never fills it; an
	// unpaced UDP flood does, producing loss.
	NATQueueFrames int

	// Host-side service footprint while the VM is powered on: a
	// free-running duty cycle at elevated priority (the VMM's kernel
	// components and translator upkeep do not inherit the guest's idle
	// priority — the paper's central intrusiveness mechanism).
	ServiceDuty   float64  // fraction of one core (0..1)
	ServicePeriod sim.Time // duty-cycle period
	ServiceMix    cost.Mix // class mix of the service work

	// TickLoss is the fraction of timer ticks lost while the vCPU is
	// descheduled, driving guest clock drift (§4 methodology: timing
	// inside loaded VMs is unreliable).
	TickLoss float64

	// RAMBytes is the configured guest memory, committed at power-on
	// (§4.2.1: constant, known in advance; 300 MB in the paper).
	RAMBytes int64
}

// Native returns the pass-through profile: running on this "VMM" is
// exactly running on hardware. The native baseline of every figure is the
// same guest kernel under this profile.
func Native() Profile {
	return Profile{
		Name:      "native",
		IntExpand: 1, FPExpand: 1, MemExpand: 1, KernelExpand: 1,
		NetMode:  NetBridged,
		RAMBytes: 0, // no reservation: the OS owns the machine
	}
}

// Validate rejects physically meaningless profiles.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("vmm: profile needs a name")
	}
	for _, e := range []struct {
		name string
		v    float64
	}{
		{"IntExpand", p.IntExpand}, {"FPExpand", p.FPExpand},
		{"MemExpand", p.MemExpand}, {"KernelExpand", p.KernelExpand},
	} {
		if e.v < 1 || math.IsNaN(e.v) || math.IsInf(e.v, 0) {
			return fmt.Errorf("vmm: %s.%s = %v; expansion factors must be ≥ 1", p.Name, e.name, e.v)
		}
	}
	if p.DiskPerOp < 0 || p.NetPerFrame < 0 || p.NetPerByte < 0 {
		return fmt.Errorf("vmm: %s has negative device costs", p.Name)
	}
	if p.DiskChunk < 0 {
		return fmt.Errorf("vmm: %s DiskChunk negative", p.Name)
	}
	if p.ServiceDuty < 0 || p.ServiceDuty > 1 {
		return fmt.Errorf("vmm: %s ServiceDuty %v outside [0,1]", p.Name, p.ServiceDuty)
	}
	if p.ServiceDuty > 0 && p.ServicePeriod <= 0 {
		return fmt.Errorf("vmm: %s has service duty but no period", p.Name)
	}
	if p.TickLoss < 0 || p.TickLoss > 1 {
		return fmt.Errorf("vmm: %s TickLoss %v outside [0,1]", p.Name, p.TickLoss)
	}
	if p.RAMBytes < 0 {
		return fmt.Errorf("vmm: %s negative RAM", p.Name)
	}
	if p.NATQueueFrames < 0 {
		return fmt.Errorf("vmm: %s negative NAT queue bound", p.Name)
	}
	return nil
}

// defaultNATQueueFrames sizes the proxy buffer so windowed TCP (≤ ~70
// frames of data+ACKs in flight) never overflows while UDP floods do.
const defaultNATQueueFrames = 96

// natQueueFrames resolves the proxy buffer bound.
func (p Profile) natQueueFrames() int {
	if p.NATQueueFrames > 0 {
		return p.NATQueueFrames
	}
	return defaultNATQueueFrames
}

// ExpandFactor returns the host-cycles-per-guest-cycle multiplier for a
// compute step with the given class mix.
func (p Profile) ExpandFactor(m cost.Mix) float64 {
	return m.Int*p.IntExpand + m.FP*p.FPExpand + m.Mem*p.MemExpand + m.Kernel*p.KernelExpand
}

// ExpandStep transforms a guest compute step into the host work it costs.
// Cycles grow by the class-weighted expansion; the emitted mix is
// re-weighted by where the host cycles actually go (a heavily expanded
// kernel step becomes mostly integer work: trap handling and translation
// are ALU/branch code, while the guest's memory traffic stays constant).
func (p Profile) ExpandStep(s cost.Step) cost.Step {
	if s.Kind != cost.StepCompute {
		return s
	}
	intCy := s.Cycles * s.Mix.Int * p.IntExpand
	fpCy := s.Cycles * s.Mix.FP * p.FPExpand
	memCy := s.Cycles * s.Mix.Mem * p.MemExpand
	krnCy := s.Cycles * s.Mix.Kernel * p.KernelExpand
	total := intCy + fpCy + memCy + krnCy
	if total <= 0 {
		return s
	}
	// The guest's own cycles keep their classes; the expansion overhead
	// beyond 1× is VMM code — integer-dominated with a modest memory
	// component (translation-cache and shadow-structure traffic).
	over := total - s.Cycles
	hostMix := cost.Mix{
		Int:    s.Cycles*s.Mix.Int + 0.8*over,
		FP:     s.Cycles * s.Mix.FP,
		Mem:    s.Cycles*s.Mix.Mem + 0.2*over,
		Kernel: s.Cycles * s.Mix.Kernel,
	}
	return cost.Step{Kind: cost.StepCompute, Cycles: total, Mix: hostMix.Normalized()}
}

// EmuMix is the class mix of device-emulation code (copy loops and
// control logic inside the VMM).
var EmuMix = cost.Mix{Int: 0.65, Mem: 0.35}
