package vmm

import (
	"fmt"

	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

// VirtualDisk implements guestos.BlockDevice by emulating a disk
// controller: guest commands are split into profile-bounded chunks, each
// chunk pays the profile's per-command latency and emulation CPU, is
// translated through the disk image, and finally lands on the host disk.
// Chunks of one command are serviced strictly in order, as a single
// emulated IDE/SCSI command queue would.
type VirtualDisk struct {
	vm    *VM
	image Image
	disk  *hw.Disk
	s     *sim.Simulator

	// Stats
	Commands uint64
	Chunks   uint64
}

func newVirtualDisk(vm *VM, image Image, disk *hw.Disk) *VirtualDisk {
	return &VirtualDisk{vm: vm, image: image, disk: disk, s: vm.hostOS.Sim}
}

// chunks splits a guest request per the profile's DiskChunk limit.
func (d *VirtualDisk) chunks(off, bytes int64) [][2]int64 {
	limit := d.vm.Prof.DiskChunk
	if limit <= 0 {
		return [][2]int64{{off, bytes}}
	}
	var out [][2]int64
	for bytes > 0 {
		n := bytes
		if n > limit {
			n = limit
		}
		out = append(out, [2]int64{off, n})
		off += n
		bytes -= n
	}
	return out
}

// ReadBlocks implements guestos.BlockDevice.
func (d *VirtualDisk) ReadBlocks(off, bytes int64, done func()) {
	d.submit(off, bytes, false, done)
}

// WriteBlocks implements guestos.BlockDevice.
func (d *VirtualDisk) WriteBlocks(off, bytes int64, done func()) {
	d.submit(off, bytes, true, done)
}

func (d *VirtualDisk) submit(off, bytes int64, write bool, done func()) {
	if bytes <= 0 {
		panic(fmt.Sprintf("vmm: virtual disk request of %d bytes", bytes))
	}
	d.Commands++
	chunks := d.chunks(off, bytes)
	d.Chunks += uint64(len(chunks))

	// Service chunks sequentially; each pays emulation latency + CPU, then
	// the image translation, then the physical transfer.
	var runChunk func(i int)
	runChunk = func(i int) {
		if i == len(chunks) {
			done()
			return
		}
		c := chunks[i]
		d.vm.chargeEmulation(d.vm.Prof.DiskCPUPerOp + d.image.TranslateCost())
		extents := d.image.Translate(c[0], c[1], write)
		d.s.After(d.vm.Prof.DiskPerOp, "vdisk-emu", func() {
			remaining := len(extents)
			for _, e := range extents {
				d.disk.Submit(e.FileID, e.HostOff, e.Bytes, write, func() {
					remaining--
					if remaining == 0 {
						runChunk(i + 1)
					}
				})
			}
		})
	}
	runChunk(0)
}
