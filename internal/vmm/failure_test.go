package vmm

import (
	"testing"

	"vmdg/internal/cost"
	"vmdg/internal/hostos"
	"vmdg/internal/sim"
)

// TestPowerOffDuringDiskIO: powering off while the guest blocks on a disk
// command must drain cleanly (the in-flight completion arrives, the vCPU
// exits, nothing panics or leaks a blocked thread).
func TestPowerOffDuringDiskIO(t *testing.T) {
	host := testHost(t)
	vm, err := New(host, Config{Prof: testProfile()})
	if err != nil {
		t.Fatal(err)
	}
	m := cost.NewMeter("io")
	for i := int64(0); i < 50; i++ {
		m.DiskWrite("f", i<<20, 1<<20)
		m.DiskSync("f")
	}
	vm.SpawnGuest("io", m.Profile().Iter())
	vm.PowerOn(hostos.PrioNormal)
	// Let a few commands start, then yank the power.
	host.RunFor(30 * sim.Millisecond)
	vm.PowerOff()
	host.Sim.Run()
	if host.M.Committed() != 0 {
		t.Fatalf("RAM still committed after power-off: %d", host.M.Committed())
	}
}

// TestPowerOffWhileHalted: a VM idling in its halt loop shuts down
// immediately and its vCPU thread exits.
func TestPowerOffWhileHalted(t *testing.T) {
	host := testHost(t)
	vm, err := New(host, Config{Prof: testProfile()})
	if err != nil {
		t.Fatal(err)
	}
	m := cost.NewMeter("nap")
	m.Int(1000)
	m.Sleep(10 * sim.Second) // vCPU halts for the duration
	vm.SpawnGuest("nap", m.Profile().Iter())
	vm.PowerOn(hostos.PrioIdle)
	host.RunFor(100 * sim.Millisecond)
	vm.PowerOff()
	host.Sim.RunUntil(host.Sim.Now() + 200*sim.Millisecond)
	host.Settle()
	if !vm.VCPU().Finished() {
		t.Fatal("halted vCPU did not exit on power-off")
	}
}

// TestFourVMsExhaustRAM: three 300 MB commits fit a 1 GB machine; the
// fourth must be rejected rather than silently over-committed.
func TestFourVMsExhaustRAM(t *testing.T) {
	host := testHost(t)
	for i := 0; i < 3; i++ {
		if _, err := New(host, Config{Name: string(rune('a' + i)), Prof: testProfile()}); err != nil {
			t.Fatalf("VM %d rejected: %v", i, err)
		}
	}
	if _, err := New(host, Config{Name: "d", Prof: testProfile()}); err == nil {
		t.Fatal("fourth 300 MB VM accepted on a 1 GB machine")
	}
}

// TestTwoVMsShareBaseImageViaCOW: instances resolve unwritten reads
// through the shared base and keep private overlays (§5, Csaba et al.).
func TestTwoVMsShareBaseImageViaCOW(t *testing.T) {
	host := testHost(t)
	base := NewRawImage("base", 0, 1<<30)
	cowA := NewCOWImage("a.cow", base, 2<<30)
	cowB := NewCOWImage("b.cow", base, 3<<30)
	vmA, err := New(host, Config{Name: "a", Prof: testProfile(), Image: cowA})
	if err != nil {
		t.Fatal(err)
	}
	vmB, err := New(host, Config{Name: "b", Prof: testProfile(), Image: cowB})
	if err != nil {
		t.Fatal(err)
	}
	mkio := func() cost.Program {
		m := cost.NewMeter("io")
		m.DiskWrite("data", 0, 256<<10)
		m.DiskSync("data")
		return m.Profile().Iter()
	}
	vmA.SpawnGuest("io", mkio())
	vmB.SpawnGuest("io", mkio())
	vmA.PowerOn(hostos.PrioNormal)
	vmB.PowerOn(hostos.PrioNormal)
	deadline := 60 * sim.Second
	if !host.RunUntilFinished(vmA.Proc, deadline) || !host.RunUntilFinished(vmB.Proc, deadline) {
		t.Fatal("guests did not finish")
	}
	vmA.PowerOff()
	vmB.PowerOff()
	if cowA.AllocatedClusters == 0 || cowB.AllocatedClusters == 0 {
		t.Fatal("writes did not allocate in the private overlays")
	}
	// The overlays are independent: same guest offsets, disjoint host
	// extents.
	extA := cowA.Translate(0, 4096, false)
	extB := cowB.Translate(0, 4096, false)
	if extA[0].FileID == extB[0].FileID {
		t.Fatalf("overlay writes collided in %q", extA[0].FileID)
	}
}

// TestVCPUHaltAccounting: a mostly-idle guest burns almost no host CPU,
// and its halted time is visible via the drift-free clock.
func TestVCPUHaltAccounting(t *testing.T) {
	host := testHost(t)
	vm, err := New(host, Config{Prof: Native()})
	if err != nil {
		t.Fatal(err)
	}
	m := cost.NewMeter("idleish")
	for i := 0; i < 10; i++ {
		m.Int(1e6) // ~0.4 ms
		m.Sleep(100 * sim.Millisecond)
	}
	vm.SpawnGuest("idleish", m.Profile().Iter())
	vm.PowerOn(hostos.PrioNormal)
	if !host.RunUntilFinished(vm.Proc, 60*sim.Second) {
		t.Fatal("guest did not finish")
	}
	host.Settle()
	cpu := vm.VCPU().CPUTime()
	if cpu > 50*sim.Millisecond {
		t.Fatalf("idle guest consumed %v host CPU over ~1s", cpu)
	}
	if vm.haltedTotal < 900*sim.Millisecond {
		t.Fatalf("halted time %v, want ≈1s", vm.haltedTotal)
	}
}

// TestEmulationCyclesScaleWithIO: more guest I/O means more device
// emulation on the vCPU, in proportion to command count.
func TestEmulationCyclesScaleWithIO(t *testing.T) {
	run := func(ops int) float64 {
		host := testHost(t)
		vm, err := New(host, Config{Prof: testProfile()})
		if err != nil {
			t.Fatal(err)
		}
		m := cost.NewMeter("io")
		for i := 0; i < ops; i++ {
			m.DiskWrite("f", int64(i)<<18, 1<<18)
			m.DiskSync("f")
		}
		vm.SpawnGuest("io", m.Profile().Iter())
		vm.PowerOn(hostos.PrioNormal)
		if !host.RunUntilFinished(vm.Proc, 600*sim.Second) {
			t.Fatal("did not finish")
		}
		return vm.EmulationCycles
	}
	small := run(4)
	big := run(16)
	if big < 3*small || big > 5*small {
		t.Fatalf("emulation cycles %v→%v, want ≈4× for 4× the commands", small, big)
	}
}
