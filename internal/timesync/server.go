package timesync

import (
	"fmt"
	"net"
	"time"
)

// Server is the real UDP time server (the one the paper runs on the host
// machine). It answers every valid query with its local clock.
type Server struct {
	conn *net.UDPConn
	// Clock returns the server's time; defaults to the wall clock. Tests
	// inject a fake.
	Clock func() time.Time

	// Served counts answered queries.
	Served uint64
}

// NewServer binds a UDP socket on addr (e.g. "127.0.0.1:0").
func NewServer(addr string) (*Server, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("timesync: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("timesync: listen %q: %w", addr, err)
	}
	return &Server{conn: conn, Clock: time.Now}, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Serve answers queries until Close is called. It returns nil on a clean
// shutdown.
func (s *Server) Serve() error {
	buf := make([]byte, 256)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			// Closed socket: clean shutdown.
			return nil
		}
		pkt, err := Unmarshal(buf[:n])
		if err != nil {
			continue // ignore junk, as any public UDP service must
		}
		pkt.T2 = s.Clock().UnixNano()
		if _, err := s.conn.WriteToUDP(pkt.Marshal(), peer); err != nil {
			continue
		}
		s.Served++
	}
}

// Close shuts the server down.
func (s *Server) Close() error { return s.conn.Close() }

// Query performs one real round trip against a server at addr and returns
// the estimated clock offset (server − client) and the round-trip time.
func Query(addr string, timeout time.Duration) (offset, rtt time.Duration, err error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return 0, 0, fmt.Errorf("timesync: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return 0, 0, fmt.Errorf("timesync: dial %q: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, 0, err
	}

	t1 := time.Now().UnixNano()
	q := Packet{Seq: 1, T1: t1}
	if _, err := conn.Write(q.Marshal()); err != nil {
		return 0, 0, fmt.Errorf("timesync: send: %w", err)
	}
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		return 0, 0, fmt.Errorf("timesync: recv: %w", err)
	}
	t3 := time.Now().UnixNano()
	r, err := Unmarshal(buf[:n])
	if err != nil {
		return 0, 0, err
	}
	if r.Seq != q.Seq || r.T1 != t1 {
		return 0, 0, fmt.Errorf("timesync: reply does not match query")
	}
	return Offset(t1, r.T2, t3), time.Duration(t3 - t1), nil
}
