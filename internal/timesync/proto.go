package timesync

import (
	"encoding/binary"
	"fmt"
	"time"
)

// PacketSize is the fixed datagram size (a compact NTP-like exchange).
const PacketSize = 48

// Magic identifies protocol datagrams.
const Magic = 0x564d4447 // "VMDG"

// Packet is one protocol message. The client fills T1 (its clock at send)
// and sends; the server fills T2 (its clock at receipt) and echoes. The
// client computes the offset at receipt time T3 assuming a symmetric path:
//
//	offset = T2 − (T1+T3)/2
type Packet struct {
	Seq uint64
	T1  int64 // client transmit timestamp, ns
	T2  int64 // server timestamp, ns
}

// Marshal encodes the packet into a PacketSize buffer.
func (p Packet) Marshal() []byte {
	buf := make([]byte, PacketSize)
	binary.BigEndian.PutUint32(buf[0:], Magic)
	binary.BigEndian.PutUint64(buf[8:], p.Seq)
	binary.BigEndian.PutUint64(buf[16:], uint64(p.T1))
	binary.BigEndian.PutUint64(buf[24:], uint64(p.T2))
	return buf
}

// Unmarshal decodes a datagram, validating size and magic.
func Unmarshal(buf []byte) (Packet, error) {
	if len(buf) < PacketSize {
		return Packet{}, fmt.Errorf("timesync: short packet (%d bytes)", len(buf))
	}
	if binary.BigEndian.Uint32(buf[0:]) != Magic {
		return Packet{}, fmt.Errorf("timesync: bad magic %#x", binary.BigEndian.Uint32(buf[0:]))
	}
	return Packet{
		Seq: binary.BigEndian.Uint64(buf[8:]),
		T1:  int64(binary.BigEndian.Uint64(buf[16:])),
		T2:  int64(binary.BigEndian.Uint64(buf[24:])),
	}, nil
}

// Offset computes the clock offset from a completed exchange: t1 and t3
// are client clock readings around the round trip, t2 the server stamp.
func Offset(t1, t2, t3 int64) time.Duration {
	return time.Duration(t2 - (t1+t3)/2)
}
