package timesync

import (
	"testing"
	"testing/quick"
	"time"

	"vmdg/internal/guestos"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{Seq: 42, T1: 1234567890, T2: -99}
	back, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip: %+v vs %+v", back, p)
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	f := func(seq uint64, t1, t2 int64) bool {
		p := Packet{Seq: seq, T1: t1, T2: t2}
		back, err := Unmarshal(p.Marshal())
		return err == nil && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsJunk(t *testing.T) {
	if _, err := Unmarshal([]byte("short")); err == nil {
		t.Fatal("short packet accepted")
	}
	bad := make([]byte, PacketSize)
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestOffsetFormula(t *testing.T) {
	// Client at 1000, server at 5000 (offset +4000), symmetric 200 rtt.
	// t1=1000 (server receives at its 5100), t3=1200.
	got := Offset(1000, 5100, 1200)
	if got != 4000 {
		t.Fatalf("offset = %v, want 4000", got)
	}
}

func TestRealServerAndClient(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Server clock deliberately 5 s in the future.
	const skew = 5 * time.Second
	srv.Clock = func() time.Time { return time.Now().Add(skew) }
	go srv.Serve()

	offset, rtt, err := Query(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Fatalf("rtt = %v", rtt)
	}
	if offset < skew-500*time.Millisecond || offset > skew+500*time.Millisecond {
		t.Fatalf("offset = %v, want ≈%v", offset, skew)
	}
}

func TestQueryAgainstDeadServer(t *testing.T) {
	if _, _, err := Query("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Fatal("query against dead port succeeded")
	}
}

// skewedClock drifts at a fixed rate behind true time.
type skewedClock struct {
	s    *sim.Simulator
	skew sim.Time
}

func (c skewedClock) GuestNow() sim.Time { return c.s.Now() - c.skew }

func TestSimClientCorrectsSkew(t *testing.T) {
	s := sim.New()
	nic := &testNIC{tx: hw.FastEthernet(s), rx: hw.FastEthernet(s)}
	k := guestos.NewKernel(guestos.KernelConfig{Sim: s, NIC: nic})
	sock := k.Net.OpenUDP(1)

	guest := skewedClock{s: s, skew: 700 * sim.Millisecond}
	host := guestos.ExactClock{Sim: s}
	c := NewSimClient(sock, guest, host)

	s.RunUntil(sim.Second)
	c.Poke()
	s.RunUntil(2 * sim.Second)
	if c.Collect() != 1 || !c.Synced() {
		t.Fatal("no reply collected")
	}
	// Estimated offset ≈ +700 ms (±path asymmetry ≪ 1 ms).
	if off := c.Offset(); off < 699*sim.Millisecond || off > 701*sim.Millisecond {
		t.Fatalf("offset = %v, want ≈700ms", off)
	}
	// Corrected clock within 1 ms of truth.
	if diff := c.Now() - s.Now(); diff < -sim.Millisecond || diff > sim.Millisecond {
		t.Fatalf("corrected clock off by %v", diff)
	}
}

// testNIC: direct link attachment for the simulated client tests.
type testNIC struct{ tx, rx *hw.Link }

func (n *testNIC) SendSegment(b int64, d func())   { n.tx.Transmit(b, d) }
func (n *testNIC) ReturnSegment(b int64, d func()) { n.rx.Transmit(b, d) }
