// Package timesync implements the external UDP time reference of the
// paper's methodology (§4): "to circumvent the timing imprecision that
// occur on virtual machines ... time measurements for executions under
// virtual machines were done resorting to an external time reference.
// For that purpose, we used a simple UDP time server running on the
// host machine."
//
// The package has three faces:
//
//   - the wire protocol: a fixed-size, NTP-like request/response
//     datagram pair carrying client transmit and server receive/transmit
//     stamps, from which the client derives its clock offset;
//   - a real server and client over the standard net package
//     (cmd/timeserver runs the server), usable outside the simulation;
//   - a simulated client (NewSimClient) that rides the guest network
//     stack, so in-simulation experiments correct guest clock drift
//     exactly the way the paper did — the timesync ablation measures how
//     wrong the drifting guest clock is under host load and how much of
//     that error the UDP correction repairs.
package timesync
