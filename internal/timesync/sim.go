package timesync

import (
	"vmdg/internal/guestos"
	"vmdg/internal/sim"
)

// SimClient rides a guest UDP socket to the host's time service, exactly
// as the paper's measurement harness did: the guest's own clock is
// untrustworthy under load, so experiment timing uses guest-clock readings
// corrected by the offset estimated from UDP exchanges with the host.
type SimClient struct {
	sock  *guestos.UDPSocket
	guest guestos.ClockSource // the drifting guest clock
	host  guestos.ClockSource // the authoritative host clock

	seq     uint64
	replies int
	// lastOffset is the most recent offset estimate (host − guest).
	lastOffset sim.Time
	synced     bool
}

// simExchange is the Datagram payload of a simulated query.
type simExchange struct {
	seq uint64
	t1  sim.Time // guest clock at send
	t2  sim.Time // host clock at server
}

// NewSimClient wires a client onto socket sock of a guest kernel. guest is
// the guest's clock; host is the time server's clock (exact simulation
// time on the hosting machine). The server side is installed as the
// socket's responder.
func NewSimClient(sock *guestos.UDPSocket, guest, host guestos.ClockSource) *SimClient {
	c := &SimClient{sock: sock, guest: guest, host: host}
	sock.Responder = func(d guestos.Datagram) guestos.Datagram {
		ex := d.Data.(simExchange)
		ex.t2 = host.GuestNow() // the host clock is exact
		return guestos.Datagram{Bytes: PacketSize, Data: ex}
	}
	// Stamp the offset at the reply's true arrival instant: the estimate
	// is only valid if t3 is read when the datagram lands.
	sock.OnDeliver = func(d guestos.Datagram) {
		ex, ok := d.Data.(simExchange)
		if !ok {
			return
		}
		t3 := c.guest.GuestNow()
		c.lastOffset = ex.t2 - (ex.t1+t3)/2
		c.synced = true
		c.replies++
	}
	return c
}

// Poke sends one query datagram. The reply is processed by Collect once it
// arrives (the caller advances the simulation in between).
func (c *SimClient) Poke() {
	c.seq++
	c.sock.SendTo(guestos.Datagram{
		Bytes: PacketSize,
		Data:  simExchange{seq: c.seq, t1: c.guest.GuestNow()},
	})
}

// Collect drains the socket queue and reports how many replies have been
// processed in total (offsets are stamped at arrival by the delivery hook).
func (c *SimClient) Collect() int {
	for {
		if _, ok := c.sock.Pop(); !ok {
			break
		}
	}
	return c.replies
}

// Synced reports whether at least one exchange completed.
func (c *SimClient) Synced() bool { return c.synced }

// Offset returns the latest (host − guest) clock offset estimate.
func (c *SimClient) Offset() sim.Time { return c.lastOffset }

// Now returns the corrected time: the guest clock plus the estimated
// offset — the external time reference the paper measured with.
func (c *SimClient) Now() sim.Time { return c.guest.GuestNow() + c.lastOffset }
